// Resource governance for the expensive decision procedures.
//
// The checkers in this library are EXPSPACE/PSPACE-complete (paper Thm
// 22/24/32): on adversarial inputs the macro-tuple store, the REE monoid
// closure, and the CSP search can each legitimately try to allocate far more
// memory than the host has. A ResourceBudget turns that from an OOM kill
// into a *normal* outcome: allocation-heavy code charges bytes/tuples as it
// grows, long loops poll Exhausted() alongside the CancelToken, and on
// exhaustion the checker returns Status::ResourceExhausted together with a
// structured PartialProgress report (how far the search got) instead of
// crashing the process.
//
// Accounting is deliberately coarse — the big allocations (tuple arena,
// interner tables, kernel bitset rows, monoid element stores) are charged;
// small fixed-size bookkeeping is not. Charging never fails: ChargeBytes /
// ChargeTuples only record usage, and callers observe exhaustion at their
// next poll. That keeps the hot paths branch-light and means a store may
// overshoot its budget by at most one growth step.
//
// Like CancelToken, the budget lives in common/ so the algorithm layers can
// accept one without depending on the serving subsystem; one budget may be
// shared by many worker threads.

#ifndef GQD_COMMON_BUDGET_H_
#define GQD_COMMON_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "common/status.h"

namespace gqd {

/// Which limit a ResourceBudget ran into. kNone while within budget.
enum class BudgetAxis { kNone, kBytes, kTuples, kWall };

/// Metric-label-friendly name: "bytes", "tuples", "wall", or "none".
const char* BudgetAxisName(BudgetAxis axis);

/// Snapshot of how far a budgeted search got before exhaustion. Attached to
/// checker results (and serialized into serve error responses / CLI output)
/// so a caller can distinguish "barely started" from "almost done".
struct PartialProgress {
  std::uint64_t tuples_explored = 0;  ///< macro tuples / monoid elements / CSP nodes
  std::uint64_t frontier_depth = 0;   ///< BFS depth / closure level reached
  std::uint64_t bytes_peak = 0;       ///< peak accounted bytes
  std::string stage;                  ///< which phase hit the wall
};

/// Renders a PartialProgress as a one-line human-readable summary, e.g.
/// "stage=bfs tuples_explored=1842 frontier_depth=3 bytes_peak=33554432".
std::string PartialProgressToString(const PartialProgress& progress);

/// Shared, thread-safe byte/tuple/wall-clock budget. Zero for a limit means
/// "unlimited" along that axis.
class ResourceBudget {
 public:
  using Clock = std::chrono::steady_clock;

  ResourceBudget() = default;

  /// A budget capped at `max_bytes` / `max_tuples` (0 = unlimited) and,
  /// when `max_wall` is set, at a wall-clock duration from construction.
  ResourceBudget(std::uint64_t max_bytes, std::uint64_t max_tuples,
                 std::optional<std::chrono::nanoseconds> max_wall = {})
      : max_bytes_(max_bytes), max_tuples_(max_tuples) {
    if (max_wall.has_value()) {
      wall_deadline_ = Clock::now() + *max_wall;
    }
  }

  // Atomics pin the budget in place; share it by pointer.
  ResourceBudget(const ResourceBudget&) = delete;
  ResourceBudget& operator=(const ResourceBudget&) = delete;

  std::uint64_t max_bytes() const { return max_bytes_; }
  std::uint64_t max_tuples() const { return max_tuples_; }

  // Charging is const (counters are mutable atomics) so the same
  // `const ResourceBudget*` a loop polls can also record usage — mirroring
  // how CancelToken latches expiry through a const pointer.

  /// Records an allocation (`delta` > 0) or release (`delta` < 0).
  void ChargeBytes(std::int64_t delta) const {
    std::uint64_t now =
        bytes_.fetch_add(static_cast<std::uint64_t>(delta),
                         std::memory_order_relaxed) +
        static_cast<std::uint64_t>(delta);
    // Peak tracking is racy-but-monotone: a stale max only under-reports by
    // a transient amount, never over-reports.
    std::uint64_t peak = bytes_peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !bytes_peak_.compare_exchange_weak(peak, now,
                                              std::memory_order_relaxed)) {
    }
  }

  /// Records `n` newly materialized tuples / elements / search nodes.
  void ChargeTuples(std::uint64_t n) const {
    tuples_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t bytes_used() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_peak() const {
    return bytes_peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t tuples_used() const {
    return tuples_.load(std::memory_order_relaxed);
  }

  /// True once any axis is over budget. Latches (like CancelToken::Expired)
  /// so post-trip polls are a single relaxed load with no clock read.
  bool Exhausted() const {
    if (exhausted_.load(std::memory_order_relaxed)) {
      return true;
    }
    if ((max_bytes_ != 0 && bytes_used() > max_bytes_) ||
        (max_tuples_ != 0 && tuples_used() > max_tuples_) ||
        (wall_deadline_.has_value() && Clock::now() >= *wall_deadline_)) {
      exhausted_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// OK while within budget, Status::ResourceExhausted (naming the tripped
  /// axis) once over.
  Status Check() const {
    if (!Exhausted()) {
      return Status::OK();
    }
    if (max_bytes_ != 0 && bytes_used() > max_bytes_) {
      return Status::ResourceExhausted(
          "byte budget exhausted (" + std::to_string(bytes_used()) + " > " +
          std::to_string(max_bytes_) + " bytes)");
    }
    if (max_tuples_ != 0 && tuples_used() > max_tuples_) {
      return Status::ResourceExhausted(
          "tuple budget exhausted (" + std::to_string(tuples_used()) + " > " +
          std::to_string(max_tuples_) + " tuples)");
    }
    return Status::ResourceExhausted("wall-clock budget exhausted");
  }

  /// The axis that tripped the budget (kNone while within budget). When
  /// several axes are simultaneously over, reports them in the same
  /// priority order as Check(): bytes, then tuples, then wall.
  BudgetAxis TrippedAxis() const {
    if (!Exhausted()) {
      return BudgetAxis::kNone;
    }
    if (max_bytes_ != 0 && bytes_used() > max_bytes_) {
      return BudgetAxis::kBytes;
    }
    if (max_tuples_ != 0 && tuples_used() > max_tuples_) {
      return BudgetAxis::kTuples;
    }
    return BudgetAxis::kWall;
  }

 private:
  std::uint64_t max_bytes_ = 0;
  std::uint64_t max_tuples_ = 0;
  std::optional<Clock::time_point> wall_deadline_;

  mutable std::atomic<std::uint64_t> bytes_{0};
  mutable std::atomic<std::uint64_t> bytes_peak_{0};
  mutable std::atomic<std::uint64_t> tuples_{0};
  mutable std::atomic<bool> exhausted_{false};
};

/// Amortized poll for hot loops, mirroring GQD_CANCEL_STRIDE_CHECK:
/// evaluates to true when `budget` (a `const ResourceBudget*`, may be null)
/// is exhausted, checking only every 256 invocations. `counter` must be an
/// integral l-value local to the loop.
#define GQD_BUDGET_STRIDE_CHECK(budget, counter) \
  ((budget) != nullptr && ((++(counter) & 0xFF) == 0) && (budget)->Exhausted())

}  // namespace gqd

#endif  // GQD_COMMON_BUDGET_H_
