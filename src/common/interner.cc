#include "common/interner.h"

#include <cassert>

namespace gqd {

std::uint32_t StringInterner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) {
    return it->second;
  }
  std::uint32_t id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<std::uint32_t> StringInterner::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& StringInterner::NameOf(std::uint32_t id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace gqd
