// A minimal JSON document model for the query service protocol.
//
// The `gqd serve` wire format is newline-delimited JSON (docs/runtime.md).
// The library carries no third-party dependencies, so this module provides
// the small slice of JSON the protocol needs: a recursive-descent parser
// into an immutable JsonValue tree, typed accessors with Status-reporting
// lookups, and serialization (via common/json_util.h escaping).
//
// Intentional simplifications: numbers are stored as double (the protocol
// only uses small integers), object keys keep insertion order and duplicate
// keys resolve to the first occurrence, and input must be valid UTF-8
// already (escapes \uXXXX outside the BMP are not combined into surrogate
// pairs).

#ifndef GQD_COMMON_JSON_H_
#define GQD_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/status.h"

namespace gqd {

/// One JSON value: null, bool, number, string, array or object.
class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::vector<std::pair<std::string, JsonValue>>;

  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : data_(nullptr) {}
  JsonValue(bool b) : data_(b) {}                    // NOLINT
  JsonValue(double n) : data_(n) {}                  // NOLINT
  JsonValue(std::string s) : data_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : data_(std::string(s)) {}  // NOLINT (not bool!)
  JsonValue(Array a) : data_(std::move(a)) {}        // NOLINT
  JsonValue(Object o) : data_(std::move(o)) {}       // NOLINT

  /// Parses one JSON document; trailing non-whitespace is an error.
  static Result<JsonValue> Parse(std::string_view text);

  Kind kind() const { return static_cast<Kind>(data_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const { return kind() == Kind::kNumber; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  bool AsBool() const { return std::get<bool>(data_); }
  double AsNumber() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const Array& AsArray() const { return std::get<Array>(data_); }
  const Object& AsObject() const { return std::get<Object>(data_); }

  /// Object lookup; nullptr when absent or this is not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed object accessors used by the request dispatcher. The Status
  /// message names the key, so protocol errors are actionable remotely.
  Result<std::string> GetString(std::string_view key) const;
  Result<std::int64_t> GetInt(std::string_view key) const;
  /// Missing key yields `fallback`; a present key of the wrong type is
  /// still an error.
  Result<std::int64_t> GetIntOr(std::string_view key,
                                std::int64_t fallback) const;
  Result<std::string> GetStringOr(std::string_view key,
                                  std::string fallback) const;

  /// Compact serialization (no whitespace), suitable for one-line framing.
  std::string Serialize() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      data_;
};

}  // namespace gqd

#endif  // GQD_COMMON_JSON_H_
