#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/json_util.h"

namespace gqd {

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Run() {
    GQD_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing input after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& msg) {
    return Status::InvalidArgument("json at offset " + std::to_string(pos_) +
                                   ": " + msg);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    Result<JsonValue> result = ParseValueInner();
    depth_--;
    return result;
  }

  Result<JsonValue> ParseValueInner() {
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        GQD_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) {
          return JsonValue(true);
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) {
          return JsonValue(false);
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) {
          return JsonValue();
        }
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    pos_++;  // '{'
    JsonValue::Object members;
    SkipWhitespace();
    if (Consume('}')) {
      return JsonValue(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      GQD_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      GQD_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return JsonValue(std::move(members));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    pos_++;  // '['
    JsonValue::Array elements;
    SkipWhitespace();
    if (Consume(']')) {
      return JsonValue(std::move(elements));
    }
    while (true) {
      GQD_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      elements.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return JsonValue(std::move(elements));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    pos_++;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; i++) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // UTF-8 encode the code point (BMP only; see header).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) {
      return Error("expected a JSON value");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue(value);
  }

  static constexpr int kMaxDepth = 64;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void SerializeTo(const JsonValue& value, std::ostringstream& os) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      os << "null";
      return;
    case JsonValue::Kind::kBool:
      os << (value.AsBool() ? "true" : "false");
      return;
    case JsonValue::Kind::kNumber: {
      double n = value.AsNumber();
      if (n == std::floor(n) && std::abs(n) < 9.0e15) {
        os << static_cast<std::int64_t>(n);
      } else {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.17g", n);
        os << buffer;
      }
      return;
    }
    case JsonValue::Kind::kString:
      os << JsonQuote(value.AsString());
      return;
    case JsonValue::Kind::kArray: {
      os << "[";
      const JsonValue::Array& elements = value.AsArray();
      for (std::size_t i = 0; i < elements.size(); i++) {
        if (i > 0) {
          os << ",";
        }
        SerializeTo(elements[i], os);
      }
      os << "]";
      return;
    }
    case JsonValue::Kind::kObject: {
      os << "{";
      const JsonValue::Object& members = value.AsObject();
      for (std::size_t i = 0; i < members.size(); i++) {
        if (i > 0) {
          os << ",";
        }
        os << JsonQuote(members[i].first) << ":";
        SerializeTo(members[i].second, os);
      }
      os << "}";
      return;
    }
  }
}

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Run();
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  for (const auto& [name, value] : AsObject()) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

Result<std::string> JsonValue::GetString(std::string_view key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) {
    return Status::InvalidArgument("missing required field '" +
                                   std::string(key) + "'");
  }
  if (!value->is_string()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a string");
  }
  return value->AsString();
}

Result<std::int64_t> JsonValue::GetInt(std::string_view key) const {
  const JsonValue* value = Find(key);
  if (value == nullptr) {
    return Status::InvalidArgument("missing required field '" +
                                   std::string(key) + "'");
  }
  if (!value->is_number()) {
    return Status::InvalidArgument("field '" + std::string(key) +
                                   "' must be a number");
  }
  return static_cast<std::int64_t>(value->AsNumber());
}

Result<std::int64_t> JsonValue::GetIntOr(std::string_view key,
                                         std::int64_t fallback) const {
  if (Find(key) == nullptr) {
    return fallback;
  }
  return GetInt(key);
}

Result<std::string> JsonValue::GetStringOr(std::string_view key,
                                           std::string fallback) const {
  if (Find(key) == nullptr) {
    return fallback;
  }
  return GetString(key);
}

std::string JsonValue::Serialize() const {
  std::ostringstream os;
  SerializeTo(*this, os);
  return os.str();
}

}  // namespace gqd
