// Status / Result error handling for the gqd library.
//
// The public API does not throw exceptions (see DESIGN.md, error-handling
// policy): fallible operations return gqd::Status, and fallible producers
// return gqd::Result<T>. The idiom follows Apache Arrow / RocksDB.

#ifndef GQD_COMMON_STATUS_H_
#define GQD_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace gqd {

/// Machine-readable classification of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  ///< Caller passed malformed input (bad parse, bad index).
  kNotFound,         ///< A named entity (label, node, file) does not exist.
  kOutOfRange,       ///< A numeric parameter is outside the supported range.
  kResourceExhausted,///< A configured search/size budget was exceeded.
  kInternal,         ///< Invariant violation inside the library (a bug).
  kIOError,          ///< Filesystem / stream failure.
  kUnimplemented,    ///< Feature intentionally not supported.
  kDeadlineExceeded, ///< A request deadline passed (or it was cancelled).
  kUnavailable,      ///< Transient overload/fault; the caller may retry.
};

/// Human-readable name of a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: either OK or a code plus message.
///
/// Status is cheap to copy in the OK case (single enum); error details are
/// stored inline. Use the factory functions (Status::InvalidArgument(...))
/// rather than the raw constructor.
///
/// [[nodiscard]]: silently dropping a Status swallows the error; call sites
/// that intentionally ignore one must say so with a (void) cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status.
///
/// Access the value with ValueOrDie() (asserts OK) or value() after checking
/// ok(). Mirrors arrow::Result / absl::StatusOr at the small scale this
/// library needs. [[nodiscard]] for the same reason as Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value (the success path).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (the failure path).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, aborting the process if this Result holds an error.
  /// Intended for examples and tests, not library internals.
  const T& ValueOrDie() const& {
    if (!ok()) {
      assert(false && "ValueOrDie on error Result");
    }
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie on error Result");
    return std::move(*value_);
  }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define GQD_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::gqd::Status _gqd_status = (expr);    \
    if (!_gqd_status.ok()) {               \
      return _gqd_status;                  \
    }                                      \
  } while (false)

/// Evaluates a Result expression; on success binds the value to `lhs`,
/// on failure propagates the Status out of the enclosing function.
#define GQD_ASSIGN_OR_RETURN(lhs, expr)        \
  auto GQD_CONCAT_(_gqd_result_, __LINE__) = (expr); \
  if (!GQD_CONCAT_(_gqd_result_, __LINE__).ok()) {   \
    return GQD_CONCAT_(_gqd_result_, __LINE__).status(); \
  }                                            \
  lhs = std::move(GQD_CONCAT_(_gqd_result_, __LINE__)).value()

#define GQD_CONCAT_INNER_(a, b) a##b
#define GQD_CONCAT_(a, b) GQD_CONCAT_INNER_(a, b)

}  // namespace gqd

#endif  // GQD_COMMON_STATUS_H_
