// Cooperative cancellation for long-running algorithms.
//
// The decision procedures in this library are EXPSPACE/PSPACE/coNP-complete,
// so a single request can legitimately run for hours. The serving layer
// (src/runtime/) gives every request a CancelToken carrying an optional
// deadline; the long-running loops (k-REM macro-tuple BFS, REE level
// closure, CSP backtracking, the eval product constructions) poll it and
// bail out with Status::DeadlineExceeded instead of finishing the search.
//
// Polling is cooperative and cheap: Expired() is one relaxed atomic load
// until the deadline actually passes (the clock is only read while the
// token is still live), and hot loops amortize even that with a local
// stride counter — see GQD_CANCEL_STRIDE_CHECK below.
//
// The token lives in common/ rather than runtime/ so that the algorithm
// layers can accept one without depending on the serving subsystem.

#ifndef GQD_COMMON_CANCEL_H_
#define GQD_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

#include "common/status.h"

namespace gqd {

/// Shared cancellation state: an explicit Cancel() flag plus an optional
/// wall deadline. Thread-safe; one token may be polled from many workers.
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;

  /// A token that expires at `deadline`.
  explicit CancelToken(Clock::time_point deadline) : deadline_(deadline) {}

  /// A token that expires `budget` from now.
  explicit CancelToken(std::chrono::nanoseconds budget)
      : deadline_(Clock::now() + budget) {}

  // The atomic flag pins the token in place; share it by pointer.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation explicitly (server shutdown, client gone).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Sets/replaces the deadline. Not thread-safe against concurrent
  /// Expired() polls; configure the token before handing it to workers.
  void SetDeadline(Clock::time_point deadline) { deadline_ = deadline; }

  bool has_deadline() const { return deadline_.has_value(); }
  std::optional<Clock::time_point> deadline() const { return deadline_; }

  /// True once the token is cancelled or its deadline has passed. After the
  /// first true result the answer is latched, so subsequent calls are a
  /// single relaxed load with no clock read.
  bool Expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return true;
    }
    if (deadline_.has_value() && Clock::now() >= *deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// OK while live, Status::DeadlineExceeded once expired.
  Status Check() const {
    if (Expired()) {
      return Status::DeadlineExceeded(
          deadline_.has_value() ? "request deadline exceeded"
                                : "request cancelled");
    }
    return Status::OK();
  }

 private:
  mutable std::atomic<bool> cancelled_{false};
  std::optional<Clock::time_point> deadline_;
};

/// Amortized poll for hot loops: evaluates to true when `token` (a
/// `const CancelToken*`, may be null) is expired, checking only every 256
/// invocations. `counter` must be an l-value of integral type local to the
/// loop (one per polling site).
#define GQD_CANCEL_STRIDE_CHECK(token, counter) \
  ((token) != nullptr && ((++(counter) & 0xFF) == 0) && (token)->Expired())

}  // namespace gqd

#endif  // GQD_COMMON_CANCEL_H_
