// A compact dynamically-sized bitset.
//
// DynamicBitset backs gqd::BinaryRelation (an n×n boolean matrix) and the
// macro-state sets of the definability checkers. The operations that the
// REE level-closure algorithm spends its time in — union, intersection,
// subset test, hashing — are all word-parallel here.

#ifndef GQD_COMMON_BITSET_H_
#define GQD_COMMON_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace gqd {

/// Fixed-size-at-construction bitset with word-parallel set algebra.
class DynamicBitset {
 public:
  DynamicBitset() : size_(0) {}

  /// Creates a bitset of `size` bits, all clear.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }

  bool Test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void Set(std::size_t i) { words_[i >> 6] |= (std::uint64_t{1} << (i & 63)); }
  void Reset(std::size_t i) {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void Assign(std::size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }

  /// Clears all bits.
  void Clear();

  /// Number of set bits.
  std::size_t Count() const;

  /// True iff no bit is set.
  bool None() const;

  /// True iff at least one bit is set.
  bool Any() const { return !None(); }

  /// Index of the first set bit at position >= `from`, or `size()` if none.
  std::size_t FindNext(std::size_t from) const;

  /// Word-parallel in-place union; requires equal sizes.
  DynamicBitset& operator|=(const DynamicBitset& other);
  /// Word-parallel in-place union returning true iff any bit of this
  /// changed (i.e. `other` contributed a bit not already set). The changed
  /// flag is what fixpoint loops key on; requires equal sizes.
  bool UnionWith(const DynamicBitset& other) {
    return OrAssignAndTestChanged(other.words_.data(), other.words_.size());
  }
  /// Raw-word variant of UnionWith for flat row-major kernels (e.g. the
  /// assignment-graph transition rows): ORs `num_words` words into this,
  /// returning true iff any bit changed. `num_words` must equal the word
  /// count of this bitset.
  bool OrAssignAndTestChanged(const std::uint64_t* words,
                              std::size_t num_words);
  /// Word-parallel in-place intersection; requires equal sizes.
  DynamicBitset& operator&=(const DynamicBitset& other);
  /// Word-parallel in-place difference (this \ other); requires equal sizes.
  DynamicBitset& operator-=(const DynamicBitset& other);

  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }
  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }

  /// True iff every set bit of this is set in `other`.
  bool IsSubsetOf(const DynamicBitset& other) const;

  /// True iff this and `other` share at least one set bit.
  bool Intersects(const DynamicBitset& other) const;

  bool operator==(const DynamicBitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }
  bool operator!=(const DynamicBitset& other) const {
    return !(*this == other);
  }

  /// Total order (lexicographic on words); lets bitsets key std::map.
  bool operator<(const DynamicBitset& other) const;

  /// 64-bit mixing hash over the words; suitable for unordered containers.
  std::size_t Hash() const;

  /// Direct read access to the packed words (for word-level algorithms such
  /// as boolean matrix multiplication in BinaryRelation::Compose).
  const std::vector<std::uint64_t>& words() const { return words_; }
  std::vector<std::uint64_t>& mutable_words() { return words_; }

 private:
  std::size_t size_;
  std::vector<std::uint64_t> words_;
};

/// std::hash adapter for DynamicBitset.
struct DynamicBitsetHash {
  std::size_t operator()(const DynamicBitset& b) const { return b.Hash(); }
};

/// Mixes `value` into `seed` (boost::hash_combine-style, 64-bit constants).
inline std::size_t HashCombine(std::size_t seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

}  // namespace gqd

#endif  // GQD_COMMON_BITSET_H_
