// Named, deterministic fault-injection sites (failpoints).
//
// The EXPSPACE/PSPACE checkers and the serving runtime treat resource
// exhaustion and I/O failure as *normal* outcomes; failpoints make every
// such failure path reachable on demand so the chaos suite
// (tests/test_chaos.cc) can exercise it deterministically. A site is
// declared once per .cc file at namespace scope:
//
//   GQD_FAILPOINT_DEFINE(fp_arena_grow, "krem.arena.grow");
//   ...
//   if (GQD_FAILPOINT_FIRED(fp_arena_grow)) {
//     return Status::ResourceExhausted("injected arena growth failure");
//   }
//
// Sites register themselves in a process-wide registry at static-init time,
// so the chaos suite can enumerate every planted site — a new site without
// a matching chaos scenario fails the suite instead of going silently
// untested.
//
// Arming is driven by the GQD_FAILPOINTS environment variable (read once,
// when the registry is created) or programmatically via Configure():
//
//   GQD_FAILPOINTS=name:mode[:arg[:seed]],name2:mode2...
//
// Modes:
//   off              disarm the site
//   fail             fire on every hit
//   fail-once        fire on the first hit, then disarm
//   fail-nth:N       fire on the Nth hit (1-based), once
//   fail-prob:P:S    fire with probability P percent, RNG seeded with S
//                    (deterministic for a fixed seed and hit sequence)
//   delay-ms:N       sleep N ms on every hit, never fire (worker stalls)
//
// Cost when compiled in: one relaxed atomic load per hit while the site is
// disarmed. Define GQD_DISABLE_FAILPOINTS to compile every site and check
// out entirely (the macros become no-ops and nothing registers).

#ifndef GQD_COMMON_FAILPOINT_H_
#define GQD_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/status.h"

namespace gqd {

/// One planted fault-injection site. Instances are expected to have static
/// storage duration (they register with the process-wide registry and are
/// never unregistered).
class FailpointSite {
 public:
  enum class Mode : std::uint8_t {
    kOff,
    kFail,
    kFailOnce,
    kFailNth,
    kFailProb,
    kDelayMs,
  };

  /// Registers the site under `name` (must be a string literal or otherwise
  /// outlive the process).
  explicit FailpointSite(const char* name);

  FailpointSite(const FailpointSite&) = delete;
  FailpointSite& operator=(const FailpointSite&) = delete;

  const char* name() const { return name_; }

  /// Hot-path check: true when the site should fail at this hit. Disarmed
  /// sites cost one relaxed atomic load; armed sites take a mutex.
  bool ShouldFail() {
    if (mode_.load(std::memory_order_relaxed) == Mode::kOff) {
      return false;
    }
    return Fire();
  }

  /// The canonical Status carried by an injected fault at this site.
  Status InjectedFault() const {
    return Status::Internal(std::string("failpoint '") + name_ + "' fired");
  }

  /// Arms the site. `arg` is N for fail-nth / delay-ms, the percent
  /// probability for fail-prob; `seed` seeds the fail-prob RNG.
  void Arm(Mode mode, std::uint64_t arg, std::uint64_t seed);
  void Disarm() { Arm(Mode::kOff, 0, 0); }

  /// Total hits (armed or not) and fires since construction.
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t fired() const {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  bool Fire();

  const char* name_;
  std::atomic<Mode> mode_{Mode::kOff};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> fired_{0};

  std::mutex mutex_;  ///< guards the armed-path state below
  std::uint64_t arg_ = 0;
  std::uint64_t armed_hits_ = 0;  ///< hits since the site was last armed
  std::mt19937_64 rng_;
};

/// Process-wide failpoint registry. Sites register at static init;
/// configuration (from GQD_FAILPOINTS or Configure()) is kept by name and
/// applied to sites as they appear, so arming is independent of
/// static-initialization order across translation units.
class FailpointRegistry {
 public:
  static FailpointRegistry& Instance();

  /// Parses a GQD_FAILPOINTS-style spec and arms the named sites,
  /// remembering the config for sites that register later. An empty spec is
  /// a no-op. Returns InvalidArgument on a malformed entry (earlier entries
  /// may already have been applied).
  Status Configure(const std::string& spec);

  /// Disarms every site and forgets pending configuration.
  void Reset();

  /// Names of all registered sites, sorted.
  std::vector<std::string> SiteNames() const;

  /// Looks up a registered site by name; nullptr when absent.
  FailpointSite* Find(const std::string& name) const;

 private:
  friend class FailpointSite;

  FailpointRegistry();
  void Register(FailpointSite* site);

  struct PendingConfig {
    std::string name;
    FailpointSite::Mode mode;
    std::uint64_t arg;
    std::uint64_t seed;
  };

  Status ParseEntry(const std::string& entry, PendingConfig* config) const;

  mutable std::mutex mutex_;
  std::vector<FailpointSite*> sites_;
  std::vector<PendingConfig> pending_;
};

#if defined(GQD_DISABLE_FAILPOINTS)

#define GQD_FAILPOINT_DEFINE(var, name)
#define GQD_FAILPOINT_FIRED(var) false

#else

/// Declares a failpoint site at namespace scope (one per planted location).
#define GQD_FAILPOINT_DEFINE(var, name) ::gqd::FailpointSite var { name }

/// True when the site fires at this hit.
#define GQD_FAILPOINT_FIRED(var) ((var).ShouldFail())

#endif  // GQD_DISABLE_FAILPOINTS

}  // namespace gqd

#endif  // GQD_COMMON_FAILPOINT_H_
