// Consistent-hash ring placing graph fingerprints on cluster workers.
//
// Each worker contributes `vnodes` virtual points (FNV-1a of
// "worker/<index>/<vnode>") to a sorted ring; a key (the 16-hex-digit
// graph fingerprint from GraphRegistry) hashes to a point and its owners
// are the first R *distinct* workers clockwise from there. Placement is a
// pure function of the static fleet — dead workers are skipped at request
// time rather than removed from the ring, so keys never migrate when a
// worker flaps and a rejoining worker still owns exactly what it owned
// before the crash (which is what makes warm replay well-defined).

#ifndef GQD_CLUSTER_HASH_RING_H_
#define GQD_CLUSTER_HASH_RING_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace gqd {

class HashRing {
 public:
  /// 64 points per worker keeps the max/mean ownership skew under ~15%
  /// for small fleets without measurable lookup cost.
  static constexpr std::size_t kDefaultVnodes = 64;

  /// Adds worker `index` with `vnodes` virtual points. Workers are added
  /// once, at fleet construction.
  void AddWorker(std::size_t index, std::size_t vnodes = kDefaultVnodes);

  std::size_t worker_count() const { return worker_count_; }

  /// The first `replicas` distinct workers clockwise from Hash(key), in
  /// preference order (primary first). Returns every worker when
  /// `replicas` >= fleet size. Deterministic for a given fleet and key.
  std::vector<std::size_t> Owners(std::string_view key,
                                  std::size_t replicas) const;

  /// FNV-1a 64-bit (the hash family GraphRegistry uses for graph
  /// fingerprints) with a murmur3 finalizer for full-width avalanche,
  /// applied here to the fingerprint string itself.
  static std::uint64_t Hash(std::string_view key);

 private:
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;  ///< sorted
  std::size_t worker_count_ = 0;
};

}  // namespace gqd

#endif  // GQD_CLUSTER_HASH_RING_H_
