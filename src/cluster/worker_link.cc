#include "cluster/worker_link.h"

#include <utility>

#include "common/failpoint.h"

namespace gqd {

namespace {

// Router-side fault sites. Like the client.* sites these are
// connection-local: a fired site fails one round trip (closing the pooled
// connection so the next checkout reconnects fresh) and the router fails
// the request over to a replica. cluster.read models a mid-request worker
// kill — the request may have executed on the worker, so failover
// re-executes it on a replica; queries are pure, so that is safe.
GQD_FAILPOINT_DEFINE(fp_cluster_connect, "cluster.connect");
GQD_FAILPOINT_DEFINE(fp_cluster_write, "cluster.write");
GQD_FAILPOINT_DEFINE(fp_cluster_read, "cluster.read");
// Health-probe loss: a fired probe reports failure even if the worker is
// up, driving the healthy → suspect → dead path without killing anything.
GQD_FAILPOINT_DEFINE(fp_cluster_probe, "cluster.probe");

}  // namespace

const char* WorkerStateName(WorkerState state) {
  switch (state) {
    case WorkerState::kHealthy:
      return "healthy";
    case WorkerState::kSuspect:
      return "suspect";
    case WorkerState::kDead:
      return "dead";
    case WorkerState::kRejoining:
      return "rejoining";
  }
  return "unknown";
}

WorkerLink::WorkerLink(std::size_t index, const WorkerLinkOptions& options)
    : index_(index), options_(options) {
  for (std::size_t i = 0; i < options_.pool_size; i++) {
    pool_.push_back(std::make_unique<LineClient>());
  }
}

std::unique_ptr<LineClient> WorkerLink::Checkout() {
  std::unique_lock<std::mutex> lock(pool_mutex_);
  pool_available_.wait(lock, [this] { return !pool_.empty(); });
  std::unique_ptr<LineClient> client = std::move(pool_.back());
  pool_.pop_back();
  return client;
}

void WorkerLink::Checkin(std::unique_ptr<LineClient> client) {
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_.push_back(std::move(client));
  }
  pool_available_.notify_one();
}

/// Decrements the in-flight gauge on every Roundtrip exit path.
struct InFlightGuard {
  explicit InFlightGuard(std::atomic<int>* gauge) : gauge(gauge) {
    gauge->fetch_add(1, std::memory_order_relaxed);
  }
  ~InFlightGuard() { gauge->fetch_sub(1, std::memory_order_relaxed); }
  std::atomic<int>* gauge;
};

Result<std::string> WorkerLink::Roundtrip(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  InFlightGuard in_flight(&in_flight_);
  std::unique_ptr<LineClient> client = Checkout();
  auto fail = [this, &client](Status status) -> Result<std::string> {
    client->Close();
    Checkin(std::move(client));
    RecordFailure();
    return status;
  };
  if (GQD_FAILPOINT_FIRED(fp_cluster_connect)) {
    return fail(Status::IOError(
        "injected worker connect failure (failpoint cluster.connect)"));
  }
  if (!client->connected()) {
    Status status = client->Connect(options_.port);
    if (!status.ok()) {
      return fail(std::move(status));
    }
  }
  if (GQD_FAILPOINT_FIRED(fp_cluster_write)) {
    return fail(Status::IOError(
        "injected worker write failure (failpoint cluster.write)"));
  }
  Result<std::string> response = client->Call(line);
  if (response.ok() && GQD_FAILPOINT_FIRED(fp_cluster_read)) {
    response = Result<std::string>(Status::IOError(
        "injected worker read failure (failpoint cluster.read)"));
  }
  if (!response.ok()) {
    return fail(response.status());
  }
  Checkin(std::move(client));
  RecordSuccess();
  return response;
}

bool WorkerLink::Probe() {
  if (GQD_FAILPOINT_FIRED(fp_cluster_probe)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(probe_mutex_);
  if (!probe_client_.connected()) {
    if (!probe_client_.Connect(options_.port).ok()) {
      return false;
    }
  }
  Result<std::string> pong = probe_client_.Call("{\"cmd\":\"ping\"}");
  if (!pong.ok()) {
    probe_client_.Close();
    return false;
  }
  return pong.value().find("\"pong\":true") != std::string::npos;
}

void WorkerLink::RecordFailure() {
  failures_total_.fetch_add(1, std::memory_order_relaxed);
  int failures = consecutive_failures_.fetch_add(1, std::memory_order_acq_rel) + 1;
  int healthy = static_cast<int>(WorkerState::kHealthy);
  state_.compare_exchange_strong(healthy,
                                 static_cast<int>(WorkerState::kSuspect),
                                 std::memory_order_acq_rel);
  if (failures >= options_.suspect_threshold) {
    int suspect = static_cast<int>(WorkerState::kSuspect);
    state_.compare_exchange_strong(suspect,
                                   static_cast<int>(WorkerState::kDead),
                                   std::memory_order_acq_rel);
  }
}

void WorkerLink::RecordSuccess() {
  consecutive_failures_.store(0, std::memory_order_release);
}

bool WorkerLink::BeginRejoin() {
  int suspect = static_cast<int>(WorkerState::kSuspect);
  int dead = static_cast<int>(WorkerState::kDead);
  int rejoining = static_cast<int>(WorkerState::kRejoining);
  return state_.compare_exchange_strong(suspect, rejoining,
                                        std::memory_order_acq_rel) ||
         state_.compare_exchange_strong(dead, rejoining,
                                        std::memory_order_acq_rel);
}

void WorkerLink::CompleteRejoin() {
  consecutive_failures_.store(0, std::memory_order_release);
  state_.store(static_cast<int>(WorkerState::kHealthy),
               std::memory_order_release);
}

void WorkerLink::AbortRejoin() {
  state_.store(static_cast<int>(WorkerState::kDead),
               std::memory_order_release);
}

}  // namespace gqd
