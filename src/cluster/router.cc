#include "cluster/router.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <limits>
#include <utility>

#include "common/status.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace gqd {

namespace {

/// Mirrors QueryService's error envelope so clients cannot tell a
/// router-originated error from a worker one.
JsonValue ErrorBody(const JsonValue* id, const Status& status,
                    std::int64_t retry_after_ms) {
  JsonValue::Object error;
  error.emplace_back("code", std::string(StatusCodeToString(status.code())));
  error.emplace_back("message", status.message());
  if (retry_after_ms >= 0) {
    error.emplace_back("retry_after_ms", static_cast<double>(retry_after_ms));
  }
  JsonValue::Object response;
  if (id != nullptr) {
    response.emplace_back("id", *id);
  }
  response.emplace_back("ok", false);
  response.emplace_back("error", JsonValue(std::move(error)));
  return JsonValue(std::move(response));
}

/// Classifies a worker response line without re-serializing it. A shed is
/// ok:false + code Unavailable (hint extracted when present); state loss
/// is ok:false + code NotFound on a graph the routing table says this
/// worker owns.
struct ResponseClass {
  bool shed = false;
  bool not_found = false;
  std::int64_t retry_after_ms = -1;
};

ResponseClass ClassifyWorkerResponse(const std::string& response) {
  ResponseClass out;
  // Fast path: successful responses skip the parse.
  if (response.find("\"ok\":false") == std::string::npos) {
    return out;
  }
  auto parsed = JsonValue::Parse(response);
  if (!parsed.ok() || !parsed.value().is_object()) {
    return out;
  }
  const JsonValue* error = parsed.value().Find("error");
  if (error == nullptr || !error->is_object()) {
    return out;
  }
  auto code = error->GetStringOr("code", "");
  if (!code.ok()) {
    return out;
  }
  if (code.value() == "Unavailable") {
    out.shed = true;
    auto hint = error->GetIntOr("retry_after_ms", -1);
    out.retry_after_ms = hint.ok() ? hint.value() : -1;
  } else if (code.value() == "NotFound") {
    out.not_found = true;
  }
  return out;
}

std::string WorkerLabel(std::size_t index) { return std::to_string(index); }

/// The request line re-serialized with its `trace` field replaced by (or
/// set to) `traceparent`, so the worker records spans under our trace id
/// instead of seeing the client's `"trace": true`.
std::string LineWithTrace(const JsonValue& request,
                          const std::string& traceparent) {
  JsonValue::Object body;
  bool replaced = false;
  for (const auto& [key, value] : request.AsObject()) {
    if (key == "trace") {
      body.emplace_back("trace", traceparent);
      replaced = true;
    } else {
      body.emplace_back(key, value);
    }
  }
  if (!replaced) {
    body.emplace_back("trace", traceparent);
  }
  return JsonValue(std::move(body)).Serialize();
}

/// Bounds per-command metric label cardinality against garbage `cmd`
/// strings from misbehaving clients.
std::string CommandLabel(const std::string& cmd) {
  static constexpr const char* kKnown[] = {
      "ping", "stats", "metrics", "log",  "shutdown", "load",
      "eval", "check", "lint",    "info", "spans"};
  for (const char* known : kKnown) {
    if (cmd == known) {
      return cmd;
    }
  }
  return "other";
}

std::int64_t WallMsNow() {
  return static_cast<std::int64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Wraps a handler body in the ok envelope, echoing the request id.
std::string OkLine(const JsonValue* id, JsonValue inner) {
  JsonValue::Object body;
  if (id != nullptr) {
    body.emplace_back("id", *id);
  }
  body.emplace_back("ok", true);
  for (const auto& [key, value] : inner.AsObject()) {
    body.emplace_back(key, value);
  }
  return JsonValue(std::move(body)).Serialize();
}

}  // namespace

Router::Router(const RouterOptions& options) : options_(options) {
  for (std::size_t i = 0; i < options_.worker_ports.size(); i++) {
    WorkerLinkOptions link;
    link.port = options_.worker_ports[i];
    link.pool_size = std::max<std::size_t>(1, options_.pool_size);
    link.suspect_threshold = std::max(1, options_.suspect_threshold);
    workers_.push_back(std::make_unique<WorkerLink>(i, link));
    ring_.AddWorker(i);
  }
  requests_total_ = metrics_.GetCounter("gqd_cluster_requests_total");
  failovers_total_ = metrics_.GetCounter("gqd_cluster_failovers_total");
  sheds_total_ = metrics_.GetCounter("gqd_cluster_sheds_total");
  all_down_total_ =
      metrics_.GetCounter("gqd_cluster_all_replicas_down_total");
  probes_ok_ =
      metrics_.GetCounter("gqd_cluster_probes_total", {{"result", "ok"}});
  probes_failed_ =
      metrics_.GetCounter("gqd_cluster_probes_total", {{"result", "fail"}});
  warm_replays_total_ = metrics_.GetCounter("gqd_cluster_warm_replays_total");
  warm_lines_total_ = metrics_.GetCounter("gqd_cluster_warm_lines_total");
  graph_loads_total_ = metrics_.GetCounter("gqd_cluster_graph_loads_total");
  replicated_loads_total_ =
      metrics_.GetCounter("gqd_cluster_replicated_loads_total");
  traces_collected_total_ =
      metrics_.GetCounter("gqd_cluster_traces_collected_total");
  request_latency_us_ =
      metrics_.GetHistogram("gqd_cluster_request_latency_us");
  for (const auto& worker : workers_) {
    logged_states_.push_back(worker->state());
  }
  UpdateStateGauges();
}

Router::~Router() { Stop(); }

Status Router::Start() {
  if (workers_.empty()) {
    return Status::InvalidArgument("router needs at least one worker port");
  }
  health_thread_ = std::thread([this] { HealthLoop(); });
  return Status::OK();
}

void Router::Stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;
  }
  health_cv_.notify_all();
  if (health_thread_.joinable()) {
    health_thread_.join();
  }
  if (!options_.trace_out.empty()) {
    std::lock_guard<std::mutex> lock(sink_mutex_);
    if (!trace_sink_.empty()) {
      std::ofstream out(options_.trace_out);
      if (out) {
        out << MergedTraceToChromeJson(trace_sink_) << '\n';
      }
    }
  }
}

std::string Router::ErrorLine(const JsonValue* id, const Status& status,
                              std::int64_t retry_after_ms) const {
  return ErrorBody(id, status, retry_after_ms).Serialize();
}

std::string Router::HandleLine(const std::string& line, bool* shutdown) {
  auto start = std::chrono::steady_clock::now();
  auto parsed = JsonValue::Parse(line);
  if (!parsed.ok()) {
    return ErrorLine(nullptr, parsed.status());
  }
  if (!parsed.value().is_object()) {
    return ErrorLine(nullptr,
                     Status::InvalidArgument("request must be a JSON object"));
  }
  const JsonValue& request = parsed.value();
  const JsonValue* id = request.Find("id");
  auto cmd = request.GetString("cmd");
  if (!cmd.ok()) {
    return ErrorLine(id, cmd.status());
  }
  std::string response;
  if (cmd.value() == "ping") {
    response = OkLine(id, HandlePing());
  } else if (cmd.value() == "stats") {
    response = OkLine(id, HandleStats());
  } else if (cmd.value() == "metrics") {
    response = OkLine(id, HandleMetricsCmd());
  } else if (cmd.value() == "log") {
    response = OkLine(id, HandleLogCmd(request));
  } else if (cmd.value() == "shutdown") {
    *shutdown = true;
    response = HandleShutdown(id);
  } else if (cmd.value() == "load") {
    response = HandleLoad(request, id, line);
  } else {
    response = RouteGraphCommand(cmd.value(), request, id, line);
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  auto elapsed_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
          .count());
  request_latency_us_->Observe(elapsed_us);
  CommandLatency(CommandLabel(cmd.value()))->Observe(elapsed_us);
  return response;
}

Histogram* Router::CommandLatency(const std::string& cmd) {
  std::lock_guard<std::mutex> lock(command_mutex_);
  auto it = command_latency_.find(cmd);
  if (it != command_latency_.end()) {
    return it->second;
  }
  Histogram* hist = metrics_.GetHistogram("gqd_cluster_command_latency_us",
                                          {{"command", cmd}});
  command_latency_.emplace(cmd, hist);
  return hist;
}

JsonValue Router::HandlePing() const {
  JsonValue::Object body;
  body.emplace_back("pong", true);
  body.emplace_back("role", "router");
  body.emplace_back("workers", static_cast<double>(workers_.size()));
  std::size_t routable = 0;
  for (const auto& worker : workers_) {
    if (worker->Routable()) {
      routable++;
    }
  }
  body.emplace_back("routable_workers", static_cast<double>(routable));
  return JsonValue(std::move(body));
}

JsonValue Router::HandleStats() {
  JsonValue::Array worker_array;
  for (const auto& worker : workers_) {
    JsonValue::Object entry;
    entry.emplace_back("worker", static_cast<double>(worker->index()));
    entry.emplace_back("port", static_cast<double>(worker->port()));
    entry.emplace_back("state", WorkerStateName(worker->state()));
    entry.emplace_back("requests", static_cast<double>(worker->requests()));
    entry.emplace_back("failures", static_cast<double>(worker->failures()));
    if (worker->Routable()) {
      // The worker's own stats body, embedded verbatim so a fleet scrape
      // is one round trip to the router.
      auto stats = worker->Roundtrip("{\"cmd\":\"stats\"}");
      if (stats.ok()) {
        auto parsed = JsonValue::Parse(stats.value());
        if (parsed.ok() && parsed.value().is_object()) {
          if (const JsonValue* inner = parsed.value().Find("stats")) {
            entry.emplace_back("stats", *inner);
          }
        }
      }
    }
    worker_array.emplace_back(JsonValue(std::move(entry)));
  }
  Snapshot snap = GetSnapshot();
  JsonValue::Object cluster;
  cluster.emplace_back("requests", static_cast<double>(snap.requests));
  cluster.emplace_back("failovers", static_cast<double>(snap.failovers));
  cluster.emplace_back("sheds_returned",
                       static_cast<double>(snap.sheds_returned));
  cluster.emplace_back("all_down_returned",
                       static_cast<double>(snap.all_down_returned));
  cluster.emplace_back("warm_replays",
                       static_cast<double>(snap.warm_replays));
  cluster.emplace_back("warm_lines", static_cast<double>(snap.warm_lines));
  // Same shape as the worker-side ServerStats block, so one dashboard
  // query template covers both tiers.
  JsonValue::Object per_command;
  {
    std::lock_guard<std::mutex> lock(command_mutex_);
    for (const auto& [name, hist] : command_latency_) {
      JsonValue::Object entry;
      entry.emplace_back("count", static_cast<double>(hist->count()));
      entry.emplace_back("p50",
                         static_cast<double>(hist->QuantileUpperBound(0.50)));
      entry.emplace_back("p99",
                         static_cast<double>(hist->QuantileUpperBound(0.99)));
      per_command.emplace_back(name, JsonValue(std::move(entry)));
    }
  }
  cluster.emplace_back("per_command_latency_us",
                       JsonValue(std::move(per_command)));
  // Tail-sampled slow-trace exemplars, slowest first per command.
  JsonValue::Object exemplars;
  {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    for (const auto& [name, slot] : exemplars_) {
      JsonValue::Array entries;
      for (const Exemplar& exemplar : slot) {
        JsonValue::Object entry;
        entry.emplace_back("trace_id", exemplar.trace_id);
        entry.emplace_back("latency_us",
                           static_cast<double>(exemplar.latency_us));
        entry.emplace_back("ts_ms", static_cast<double>(exemplar.ts_ms));
        auto tree = JsonValue::Parse(exemplar.tree_json);
        if (tree.ok()) {
          entry.emplace_back("trace", std::move(tree).value());
        }
        entries.emplace_back(JsonValue(std::move(entry)));
      }
      exemplars.emplace_back(name, JsonValue(std::move(entries)));
    }
  }
  JsonValue::Object body;
  body.emplace_back("role", "router");
  body.emplace_back("cluster", JsonValue(std::move(cluster)));
  body.emplace_back("exemplars", JsonValue(std::move(exemplars)));
  body.emplace_back("workers", JsonValue(std::move(worker_array)));
  return JsonValue(std::move(body));
}

JsonValue Router::HandleLogCmd(const JsonValue& request) const {
  LogLevel min_level = LogLevel::kDebug;
  if (const JsonValue* level_field = request.Find("min_level")) {
    if (level_field->is_string()) {
      (void)ParseLogLevel(level_field->AsString(), &min_level);
    }
  }
  const EventLog& log = EventLog::Global();
  JsonValue::Object body;
  body.emplace_back("events",
                    JsonValue::Parse(log.ToJsonArray(min_level)).ValueOrDie());
  body.emplace_back("emitted", static_cast<double>(log.emitted()));
  body.emplace_back("dropped", static_cast<double>(log.dropped()));
  return JsonValue(std::move(body));
}

JsonValue Router::HandleMetricsCmd() {
  // Aggregate fleet-reported totals into gauges at scrape time, then
  // render everything as one gqd_cluster_* exposition.
  for (const auto& worker : workers_) {
    Gauge* reported = metrics_.GetGauge(
        "gqd_cluster_worker_reported_requests",
        {{"worker", WorkerLabel(worker->index())}});
    if (!worker->Routable()) {
      continue;
    }
    auto stats = worker->Roundtrip("{\"cmd\":\"stats\"}");
    if (!stats.ok()) {
      continue;
    }
    auto parsed = JsonValue::Parse(stats.value());
    if (!parsed.ok() || !parsed.value().is_object()) {
      continue;
    }
    const JsonValue* inner = parsed.value().Find("stats");
    if (inner == nullptr || !inner->is_object()) {
      continue;
    }
    auto total = inner->GetIntOr("total_requests", 0);
    if (total.ok()) {
      reported->Set(static_cast<double>(total.value()));
    }
  }
  UpdateStateGauges();
  JsonValue::Object body;
  body.emplace_back("metrics", metrics_.RenderPrometheus());
  return JsonValue(std::move(body));
}

std::string Router::HandleShutdown(const JsonValue* id) {
  // Best-effort fleet shutdown before the front goes down; a dead worker
  // is already stopped, so failures here are expected and ignored.
  for (const auto& worker : workers_) {
    if (worker->Routable()) {
      (void)worker->Roundtrip("{\"cmd\":\"shutdown\"}");
    }
  }
  Stop();
  JsonValue::Object body;
  if (id != nullptr) {
    body.emplace_back("id", *id);
  }
  body.emplace_back("ok", true);
  body.emplace_back("stopping", true);
  body.emplace_back("role", "router");
  return JsonValue(std::move(body)).Serialize();
}

std::string Router::HandleLoad(const JsonValue& request, const JsonValue* id,
                               const std::string& line) {
  auto name = request.GetString("name");
  if (!name.ok()) {
    return ErrorLine(id, name.status());
  }
  // Seed order: ring owners of the *name* (fingerprint is unknown until a
  // worker has loaded the graph). Any live worker will do.
  std::vector<std::size_t> seeds = ring_.Owners(name.value(), workers_.size());
  std::string seed_response;
  bool loaded = false;
  for (std::size_t seed : seeds) {
    WorkerLink& worker = *workers_[seed];
    if (!worker.Routable()) {
      continue;
    }
    requests_total_->Inc();
    auto response = worker.Roundtrip(line);
    if (!response.ok()) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      failovers_total_->Inc();
      continue;
    }
    seed_response = response.value();
    loaded = true;
    break;
  }
  if (!loaded) {
    all_down_returned_.fetch_add(1, std::memory_order_relaxed);
    all_down_total_->Inc();
    return ErrorLine(id,
                     Status::Unavailable("no live worker accepted the load"),
                     options_.retry_after_ms);
  }
  graph_loads_total_->Inc();
  // A worker-side load error (bad graph text, missing file) is final —
  // relay it without recording a route.
  auto parsed = JsonValue::Parse(seed_response);
  if (!parsed.ok() || !parsed.value().is_object()) {
    return seed_response;
  }
  const JsonValue* ok_field = parsed.value().Find("ok");
  if (ok_field == nullptr || !ok_field->is_bool() || !ok_field->AsBool()) {
    return seed_response;
  }
  auto fingerprint = parsed.value().GetStringOr("fingerprint", "");
  if (!fingerprint.ok() || fingerprint.value().empty()) {
    return seed_response;
  }
  // Place on the ring by fingerprint and replicate to the R owners. The
  // seed may not be an owner; the extra copy it holds is harmless.
  std::vector<std::size_t> owners =
      ring_.Owners(fingerprint.value(), options_.replication);
  for (std::size_t owner : owners) {
    WorkerLink& worker = *workers_[owner];
    if (!worker.Routable()) {
      continue;  // warm replay loads it when the worker rejoins
    }
    requests_total_->Inc();
    if (worker.Roundtrip(line).ok()) {
      replicated_loads_total_->Inc();
    }
  }
  EventLog::Global().Emit(LogLevel::kInfo, "cluster", "graph_load",
                          {{"graph", name.value()},
                           {"fingerprint", fingerprint.value()},
                           {"owners", std::to_string(owners.size())}});
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    table_[name.value()] =
        RouteEntry{fingerprint.value(), line, std::move(owners)};
  }
  return seed_response;
}

std::vector<std::size_t> Router::OwnersFor(const std::string& graph) {
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    auto it = table_.find(graph);
    if (it != table_.end()) {
      return it->second.owners;
    }
  }
  // Unknown to the router (e.g. identically pre-loaded workers): place by
  // name so routing is still deterministic.
  return ring_.Owners(graph, options_.replication);
}

std::string Router::RouteGraphCommand(const std::string& cmd,
                                      const JsonValue& request,
                                      const JsonValue* id,
                                      const std::string& line) {
  const JsonValue* trace_field = request.Find("trace");
  bool client_wants_trace = trace_field != nullptr &&
                            trace_field->is_bool() && trace_field->AsBool();
  // eval/check always carry a trace context: workers record spans into
  // their collector cheaply, and the collect decision happens after the
  // response, once the latency is known (tail sampling). Other commands
  // are traced only on request.
  bool traced = client_wants_trace || cmd == "eval" || cmd == "check";
  if (!traced) {
    AttemptOutcome out = AttemptReplicas(cmd, request, id, line, nullptr);
    if (!out.success) {
      return out.response;
    }
    return WithRoutingFields(out, nullptr);
  }
  TraceContext context = TraceContext::Mint();
  auto start = std::chrono::steady_clock::now();
  AttemptOutcome out;
  {
    Tracer::Scope scope(collector_.tracer());
    TraceBindingScope binding(context.binding());
    GQD_TRACE_SPAN(span, "route.request");
    out = AttemptReplicas(cmd, request, id, line, &context);
  }
  auto latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  bool collect = client_wants_trace || !options_.trace_out.empty() ||
                 QualifiesForCollection(cmd, latency_us);
  if (!collect || !out.success) {
    // Undrained spans (ours and the workers') age out of the collectors.
    if (!out.success) {
      return out.response;
    }
    return WithRoutingFields(out, nullptr);
  }
  std::vector<OwnedSpan> merged = CollectTrace(context, out.participants);
  traces_collected_total_->Inc();
  std::string tree = MergedSpanTreeToJson(merged);
  if (options_.exemplar_capacity > 0) {
    Exemplar exemplar;
    exemplar.trace_id = context.TraceIdHex();
    exemplar.latency_us = latency_us;
    exemplar.ts_ms = WallMsNow();
    exemplar.tree_json = tree;
    RecordExemplar(cmd, std::move(exemplar));
  }
  if (!options_.trace_out.empty()) {
    AppendTraceSink(merged);
  }
  return WithRoutingFields(out, client_wants_trace ? &tree : nullptr);
}

Router::AttemptOutcome Router::AttemptReplicas(const std::string& cmd,
                                               const JsonValue& request,
                                               const JsonValue* id,
                                               const std::string& line,
                                               const TraceContext* context) {
  std::string graph;
  if (const JsonValue* g = request.Find("graph");
      g != nullptr && g->is_string()) {
    graph = g->AsString();
  }
  std::vector<std::size_t> owners =
      graph.empty() ? ring_.Owners(cmd, options_.replication)
                    : OwnersFor(graph);
  {
    // Every routed command is a pure read, so any owner serves it with a
    // bit-identical response. Prefer the least-loaded owner (in-flight
    // count, i.e. pool pressure), breaking ties round-robin so an idle
    // fleet still spreads; the rest of the list is the failover order.
    GQD_TRACE_SPAN(pick_span, "route.replica_pick");
    GQD_TRACE_SPAN_ATTR(pick_span, "owners", owners.size());
    if (owners.size() > 1) {
      std::size_t shift =
          read_rotation_.fetch_add(1, std::memory_order_relaxed) %
          owners.size();
      std::rotate(owners.begin(),
                  owners.begin() + static_cast<std::ptrdiff_t>(shift),
                  owners.end());
      std::stable_sort(owners.begin(), owners.end(),
                       [this](std::size_t a, std::size_t b) {
                         return workers_[a]->in_flight() <
                                workers_[b]->in_flight();
                       });
    }
  }
  bool table_routed = false;
  if (!graph.empty()) {
    std::lock_guard<std::mutex> lock(table_mutex_);
    table_routed = table_.find(graph) != table_.end();
  }
  AttemptOutcome out;
  std::int64_t min_retry_hint = std::numeric_limits<std::int64_t>::max();
  bool any_shed = false;
  bool any_attempt = false;
  for (std::size_t attempt = 0; attempt < owners.size(); attempt++) {
    std::size_t index = owners[attempt];
    WorkerLink& worker = *workers_[index];
    if (!worker.Routable()) {
      continue;
    }
    if (any_attempt) {
      failovers_.fetch_add(1, std::memory_order_relaxed);
      failovers_total_->Inc();
      out.failovers++;
      // Emitted under the request's trace binding (when traced), so the
      // event joins the merged trace by trace_id.
      EventLog::Global().Emit(LogLevel::kWarn, "cluster", "failover",
                              {{"cmd", cmd},
                               {"graph", graph},
                               {"to_worker", std::to_string(index)}});
    }
    any_attempt = true;
    requests_total_->Inc();
    auto response = [&] {
      // One transport span per attempt; the forwarded context parents the
      // worker's spans under it, so each failover leg nests separately.
      GQD_TRACE_SPAN(transport_span, "route.transport");
      GQD_TRACE_SPAN_ATTR(transport_span, "worker", index);
      if (context == nullptr) {
        return worker.Roundtrip(line);
      }
      TraceContext attempt_context = *context;
      if (transport_span.span_id() != 0) {
        attempt_context.parent_span = transport_span.span_id();
      }
      return worker.Roundtrip(
          LineWithTrace(request, attempt_context.ToTraceparent()));
    }();
    if (!response.ok()) {
      continue;  // transport failure (possibly mid-request): next replica
    }
    if (context != nullptr) {
      out.participants.push_back(index);
    }
    ResponseClass cls = ClassifyWorkerResponse(response.value());
    if (cls.shed) {
      any_shed = true;
      if (cls.retry_after_ms >= 0) {
        min_retry_hint = std::min(min_retry_hint, cls.retry_after_ms);
      }
      continue;  // an overloaded replica is not the only replica
    }
    if (cls.not_found && table_routed) {
      // The routing table says this owner holds the graph but the worker
      // does not know it — it restarted and lost its registry. Flag it so
      // the health loop re-warms it, and serve from a replica meanwhile.
      worker.RecordFailure();
      continue;
    }
    if (cmd == "eval" || cmd == "check") {
      RecordEvalForWarmup(graph, line);
    }
    out.response = std::move(response).value();
    out.success = true;
    out.served_by = static_cast<int>(index);
    return out;
  }
  if (any_shed) {
    sheds_returned_.fetch_add(1, std::memory_order_relaxed);
    sheds_total_->Inc();
    EventLog::Global().Emit(LogLevel::kWarn, "cluster", "shed_returned",
                            {{"cmd", cmd}, {"graph", graph}});
    std::int64_t hint =
        min_retry_hint == std::numeric_limits<std::int64_t>::max()
            ? options_.retry_after_ms
            : min_retry_hint;
    out.response = ErrorLine(
        id, Status::Unavailable("all replicas shed the request"), hint);
    return out;
  }
  all_down_returned_.fetch_add(1, std::memory_order_relaxed);
  all_down_total_->Inc();
  EventLog::Global().Emit(LogLevel::kError, "cluster", "all_replicas_down",
                          {{"cmd", cmd}, {"graph", graph}});
  out.response = ErrorLine(
      id, Status::Unavailable("all replicas for this shard are down"),
      options_.retry_after_ms);
  return out;
}

std::string Router::WithRoutingFields(const AttemptOutcome& out,
                                      const std::string* tree_json) {
  auto parsed = JsonValue::Parse(out.response);
  if (!parsed.ok() || !parsed.value().is_object()) {
    return out.response;  // never ours; relay verbatim
  }
  JsonValue::Object body = parsed.value().AsObject();
  body.emplace_back("served_by", static_cast<double>(out.served_by));
  body.emplace_back("failovers", static_cast<double>(out.failovers));
  if (tree_json != nullptr) {
    const JsonValue* ok_field = parsed.value().Find("ok");
    if (ok_field != nullptr && ok_field->is_bool() && ok_field->AsBool()) {
      auto tree = JsonValue::Parse(*tree_json);
      if (tree.ok()) {
        body.emplace_back("trace", std::move(tree).value());
      }
    }
  }
  return JsonValue(std::move(body)).Serialize();
}

bool Router::QualifiesForCollection(const std::string& cmd,
                                    std::uint64_t latency_us) {
  if (options_.exemplar_capacity == 0) {
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(exemplar_mutex_);
    auto it = exemplars_.find(cmd);
    if (it == exemplars_.end() ||
        it->second.size() < options_.exemplar_capacity) {
      return true;  // room in the store: deterministic early coverage
    }
  }
  // Rolling tail threshold: the command's latency histogram p99 as of the
  // requests routed so far (this one is observed after the decision).
  std::uint64_t p99 = CommandLatency(cmd)->QuantileUpperBound(0.99);
  return p99 != 0 && latency_us >= p99;
}

std::vector<OwnedSpan> Router::CollectTrace(
    const TraceContext& context,
    const std::vector<std::size_t>& participants) {
  std::vector<OwnedSpan> merged = OwnSpans(
      collector_.Take(context.trace_hi, context.trace_lo), "router", 1);
  const std::string drain_line =
      "{\"cmd\":\"spans\",\"trace\":\"" + context.ToTraceparent() + "\"}";
  std::vector<bool> drained(workers_.size(), false);
  for (std::size_t index : participants) {
    if (drained[index]) {
      continue;  // one worker can serve several failover legs
    }
    drained[index] = true;
    WorkerLink& worker = *workers_[index];
    std::uint64_t before = Tracer::NowNs();
    auto response = worker.Roundtrip(drain_line);
    std::uint64_t after = Tracer::NowNs();
    if (!response.ok()) {
      continue;  // died since serving; its spans are lost, the rest render
    }
    auto parsed = JsonValue::Parse(response.value());
    if (!parsed.ok() || !parsed.value().is_object()) {
      continue;
    }
    const JsonValue* spans = parsed.value().Find("spans");
    if (spans == nullptr || !spans->is_array()) {
      continue;
    }
    // Midpoint alignment: assume the worker sampled now_ns halfway
    // through the drain roundtrip and shift its monotonic epoch onto
    // ours. Error is bounded by half the (local-loopback) roundtrip.
    std::int64_t offset = 0;
    auto worker_now = parsed.value().GetIntOr("now_ns", 0);
    if (worker_now.ok() && worker_now.value() > 0) {
      offset = static_cast<std::int64_t>(before / 2 + after / 2) -
               worker_now.value();
    }
    std::vector<OwnedSpan> batch =
        ParseSpanBatch(spans->Serialize(), "worker " + std::to_string(index),
                       static_cast<std::uint32_t>(index + 2));
    for (OwnedSpan& span : batch) {
      auto shifted = static_cast<std::int64_t>(span.start_ns) + offset;
      span.start_ns = shifted > 0 ? static_cast<std::uint64_t>(shifted) : 0;
      merged.push_back(std::move(span));
    }
  }
  return merged;
}

void Router::RecordExemplar(const std::string& cmd, Exemplar exemplar) {
  std::lock_guard<std::mutex> lock(exemplar_mutex_);
  std::vector<Exemplar>& slot = exemplars_[cmd];
  slot.push_back(std::move(exemplar));
  std::stable_sort(slot.begin(), slot.end(),
                   [](const Exemplar& a, const Exemplar& b) {
                     return a.latency_us > b.latency_us;
                   });
  if (slot.size() > options_.exemplar_capacity) {
    slot.resize(options_.exemplar_capacity);
  }
}

void Router::AppendTraceSink(const std::vector<OwnedSpan>& spans) {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  for (const OwnedSpan& span : spans) {
    if (trace_sink_.size() >= kTraceSinkCapacity) {
      return;
    }
    trace_sink_.push_back(span);
  }
}

void Router::RecordEvalForWarmup(const std::string& graph,
                                 const std::string& line) {
  if (graph.empty() || options_.warm_log_capacity == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(table_mutex_);
  warm_log_.push_back(WarmEntry{graph, line});
  while (warm_log_.size() > options_.warm_log_capacity) {
    warm_log_.pop_front();
  }
}

void Router::HealthLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    for (auto& worker : workers_) {
      if (stopping_.load(std::memory_order_acquire)) {
        return;
      }
      bool alive = worker->Probe();
      if (alive) {
        probes_ok_->Inc();
      } else {
        probes_failed_->Inc();
      }
      WorkerState state = worker->state();
      if (!alive) {
        if (state != WorkerState::kRejoining) {
          worker->RecordFailure();
        }
        continue;
      }
      if (state == WorkerState::kHealthy) {
        worker->RecordSuccess();
        continue;
      }
      // suspect or dead and answering probes again: warm before serving.
      // (A transient blip passes through the same path; the replay is a
      // handful of idempotent loads, so correctness never depends on
      // guessing whether state was really lost.)
      if (worker->BeginRejoin()) {
        if (WarmWorker(*worker)) {
          worker->CompleteRejoin();
          warm_replays_.fetch_add(1, std::memory_order_relaxed);
          warm_replays_total_->Inc();
          EventLog::Global().Emit(
              LogLevel::kInfo, "cluster", "warm_replay",
              {{"worker", std::to_string(worker->index())}});
        } else {
          worker->AbortRejoin();
        }
      }
    }
    // State transitions become structured events here, one per edge. The
    // probe loop sees every worker each period, so an edge taken on the
    // request path (e.g. RecordFailure on registry loss) surfaces within
    // one probe interval.
    for (auto& worker : workers_) {
      WorkerState now_state = worker->state();
      WorkerState& last = logged_states_[worker->index()];
      if (now_state == last) {
        continue;
      }
      LogLevel level = now_state == WorkerState::kDead ? LogLevel::kError
                       : now_state == WorkerState::kSuspect
                           ? LogLevel::kWarn
                           : LogLevel::kInfo;
      EventLog::Global().Emit(level, "cluster", "worker_state",
                              {{"worker", std::to_string(worker->index())},
                               {"from", WorkerStateName(last)},
                               {"to", WorkerStateName(now_state)}});
      last = now_state;
    }
    UpdateStateGauges();
    std::unique_lock<std::mutex> lock(health_mutex_);
    health_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.probe_interval_ms),
                        [this] { return stopping_.load(); });
  }
}

bool Router::WarmWorker(WorkerLink& worker) {
  // Snapshot the shards this worker owns and the recent eval traffic for
  // them, then replay: loads first (registry state), evals after (result
  // cache). Replays bypass the state machine's Routable() gate because
  // the worker is deliberately kRejoining while we feed it.
  std::vector<std::string> lines;
  {
    std::lock_guard<std::mutex> lock(table_mutex_);
    for (const auto& [name, entry] : table_) {
      if (std::find(entry.owners.begin(), entry.owners.end(),
                    worker.index()) != entry.owners.end()) {
        lines.push_back(entry.load_line);
      }
    }
    for (const WarmEntry& entry : warm_log_) {
      auto it = table_.find(entry.graph);
      if (it == table_.end()) {
        continue;
      }
      const auto& owners = it->second.owners;
      if (std::find(owners.begin(), owners.end(), worker.index()) !=
          owners.end()) {
        lines.push_back(entry.line);
      }
    }
  }
  for (const std::string& line : lines) {
    auto response = worker.Roundtrip(line);
    if (!response.ok()) {
      return false;
    }
    warm_lines_.fetch_add(1, std::memory_order_relaxed);
    warm_lines_total_->Inc();
  }
  return true;
}

void Router::UpdateStateGauges() {
  std::size_t counts[4] = {0, 0, 0, 0};
  for (const auto& worker : workers_) {
    counts[static_cast<int>(worker->state())]++;
    metrics_
        .GetGauge("gqd_cluster_worker_up",
                  {{"worker", WorkerLabel(worker->index())}})
        ->Set(worker->Routable() ? 1.0 : 0.0);
    metrics_
        .GetGauge("gqd_cluster_worker_requests",
                  {{"worker", WorkerLabel(worker->index())}})
        ->Set(static_cast<double>(worker->requests()));
  }
  const char* names[4] = {"healthy", "suspect", "dead", "rejoining"};
  for (int s = 0; s < 4; s++) {
    metrics_.GetGauge("gqd_cluster_workers", {{"state", names[s]}})
        ->Set(static_cast<double>(counts[s]));
  }
}

Router::Snapshot Router::GetSnapshot() const {
  Snapshot snap;
  for (const auto& worker : workers_) {
    snap.requests += worker->requests();
    snap.worker_states.push_back(worker->state());
    snap.worker_requests.push_back(worker->requests());
  }
  snap.failovers = failovers_.load(std::memory_order_relaxed);
  snap.sheds_returned = sheds_returned_.load(std::memory_order_relaxed);
  snap.all_down_returned = all_down_returned_.load(std::memory_order_relaxed);
  snap.warm_replays = warm_replays_.load(std::memory_order_relaxed);
  snap.warm_lines = warm_lines_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace gqd
