#include "cluster/hash_ring.h"

#include <algorithm>
#include <string>

namespace gqd {

std::uint64_t HashRing::Hash(std::string_view key) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV offset basis
  for (char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  // Raw FNV-1a mixes its high bits poorly on short, similar strings —
  // unfinalized, the vnode points cluster and one worker can own half the
  // ring. The murmur3 finalizer gives the full-width avalanche the ring
  // ordering needs.
  hash ^= hash >> 33;
  hash *= 0xff51afd7ed558ccdull;
  hash ^= hash >> 33;
  hash *= 0xc4ceb9fe1a85ec53ull;
  hash ^= hash >> 33;
  return hash;
}

void HashRing::AddWorker(std::size_t index, std::size_t vnodes) {
  for (std::size_t v = 0; v < vnodes; v++) {
    std::string point_key =
        "worker/" + std::to_string(index) + "/" + std::to_string(v);
    points_.emplace_back(Hash(point_key), index);
  }
  std::sort(points_.begin(), points_.end());
  worker_count_++;
}

std::vector<std::size_t> HashRing::Owners(std::string_view key,
                                          std::size_t replicas) const {
  std::vector<std::size_t> owners;
  if (points_.empty() || replicas == 0) {
    return owners;
  }
  replicas = std::min(replicas, worker_count_);
  std::uint64_t h = Hash(key);
  auto it = std::lower_bound(
      points_.begin(), points_.end(),
      std::make_pair(h, std::size_t{0}),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t step = 0; step < points_.size() && owners.size() < replicas;
       step++) {
    if (it == points_.end()) {
      it = points_.begin();
    }
    std::size_t worker = it->second;
    if (std::find(owners.begin(), owners.end(), worker) == owners.end()) {
      owners.push_back(worker);
    }
    ++it;
  }
  return owners;
}

}  // namespace gqd
