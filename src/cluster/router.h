// The cluster routing front: a LineHandler that consistent-hashes
// requests on graph fingerprint across a fleet of `gqd serve` workers.
//
// Topology (docs/runtime.md): clients speak the ordinary newline-JSON
// protocol to a front Server hosting a Router; the Router forwards each
// request to a backend worker chosen by HashRing::Owners(fingerprint, R)
// and relays the response verbatim. Because every worker computes
// deterministic verdicts, a response is bit-identical no matter which
// replica served it — failover is invisible to clients.
//
// Placement: `load` is forwarded to a seed worker to learn the graph's
// fingerprint (GraphRegistry computes it), then replayed to the R ring
// owners and recorded in the routing table (name → fingerprint, owners,
// load line). Graph commands rotate round-robin across the R owners —
// every routed command is a pure read, so spreading across replicas is
// free capacity — and fail over through the rest of the owner list.
// Unknown graph names fall back to hashing the name itself, which keeps
// identically pre-loaded fleets routable.
//
// Failover: a transport error (worker died, possibly mid-request) records
// a health failure and retries the next replica — queries are pure, so
// re-execution is safe. A shed (Unavailable) tries the next replica
// immediately and only returns Unavailable to the client when every
// routable replica shed, with the smallest per-worker retry_after_ms
// hint. When all replicas are down the client sees Unavailable with a
// retry hint, never a hang.
//
// Health: a background loop probes every worker each probe_interval_ms
// (ping bypasses worker admission, so saturation is not death). Probe
// failures drive healthy → suspect → dead; a probe success from suspect
// or dead claims rejoining, replays the router's load log and recent eval
// log for the shards the worker owns (cache warming), then restores
// healthy. Rejoining workers take no traffic.

#ifndef GQD_CLUSTER_ROUTER_H_
#define GQD_CLUSTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/worker_link.h"
#include "obs/metrics.h"
#include "runtime/json.h"
#include "runtime/line_handler.h"

namespace gqd {

struct RouterOptions {
  /// Backend worker ports (127.0.0.1). Fleet membership is fixed for the
  /// router's lifetime; crashes are handled by health state, not removal.
  std::vector<std::uint16_t> worker_ports;
  /// Replication factor R: each graph is loaded on R ring owners. Clamped
  /// to the fleet size.
  std::size_t replication = 2;
  /// Pooled connections per worker (= per-worker in-flight cap).
  std::size_t pool_size = 4;
  /// Health-probe period.
  int probe_interval_ms = 50;
  /// Consecutive failures before a suspect worker is declared dead.
  int suspect_threshold = 3;
  /// Recent eval/check lines kept for cache warming on rejoin.
  std::size_t warm_log_capacity = 128;
  /// Fallback retry hint when the fleet is down and no worker supplied
  /// one.
  int retry_after_ms = 50;
};

class Router : public LineHandler {
 public:
  explicit Router(const RouterOptions& options);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Starts the health loop. Workers need not be up yet — they enter
  /// through the probe/rejoin path as they come online.
  Status Start();
  /// Stops the health loop. Idempotent.
  void Stop();

  std::string HandleLine(const std::string& line, bool* shutdown) override;

  /// Point-in-time cluster counters (also exported as gqd_cluster_*).
  struct Snapshot {
    std::uint64_t requests = 0;        ///< lines routed to workers
    std::uint64_t failovers = 0;       ///< replica-to-replica retries
    std::uint64_t sheds_returned = 0;  ///< all replicas shed → client
    std::uint64_t all_down_returned = 0;
    std::uint64_t warm_replays = 0;    ///< rejoin warm cycles completed
    std::uint64_t warm_lines = 0;      ///< lines replayed while warming
    std::vector<WorkerState> worker_states;
    std::vector<std::uint64_t> worker_requests;
  };
  Snapshot GetSnapshot() const;

  WorkerState worker_state(std::size_t i) const {
    return workers_[i]->state();
  }
  std::size_t worker_count() const { return workers_.size(); }

  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct RouteEntry {
    std::string fingerprint;
    std::string load_line;  ///< replayed to warm a rejoining owner
    std::vector<std::size_t> owners;
  };
  struct WarmEntry {
    std::string graph;
    std::string line;
  };

  JsonValue HandlePing() const;
  JsonValue HandleStats();
  JsonValue HandleMetricsCmd();
  std::string HandleShutdown(const JsonValue* id);
  std::string HandleLoad(const JsonValue& request, const JsonValue* id,
                         const std::string& line);
  std::string RouteGraphCommand(const std::string& cmd,
                                const JsonValue& request, const JsonValue* id,
                                const std::string& line);

  /// Owners for `graph` from the routing table, or the name-hash fallback.
  std::vector<std::size_t> OwnersFor(const std::string& graph);
  std::string ErrorLine(const JsonValue* id, const Status& status,
                        std::int64_t retry_after_ms = -1) const;

  void HealthLoop();
  /// Replays load lines + the recent eval log for shards `worker` owns.
  /// True when every line round-tripped.
  bool WarmWorker(WorkerLink& worker);
  void RecordEvalForWarmup(const std::string& graph, const std::string& line);
  void UpdateStateGauges();

  const RouterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<WorkerLink>> workers_;

  mutable std::mutex table_mutex_;
  std::unordered_map<std::string, RouteEntry> table_;
  std::deque<WarmEntry> warm_log_;

  /// Round-robin cursor spreading reads across each shard's R owners.
  std::atomic<std::uint64_t> read_rotation_{0};

  std::atomic<bool> stopping_{false};
  std::mutex health_mutex_;
  std::condition_variable health_cv_;
  std::thread health_thread_;

  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> sheds_returned_{0};
  std::atomic<std::uint64_t> all_down_returned_{0};
  std::atomic<std::uint64_t> warm_replays_{0};
  std::atomic<std::uint64_t> warm_lines_{0};

  MetricsRegistry metrics_;
  Counter* requests_total_;
  Counter* failovers_total_;
  Counter* sheds_total_;
  Counter* all_down_total_;
  Counter* probes_ok_;
  Counter* probes_failed_;
  Counter* warm_replays_total_;
  Counter* warm_lines_total_;
  Counter* graph_loads_total_;
  Counter* replicated_loads_total_;
  Histogram* request_latency_us_;
};

}  // namespace gqd

#endif  // GQD_CLUSTER_ROUTER_H_
