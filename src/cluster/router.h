// The cluster routing front: a LineHandler that consistent-hashes
// requests on graph fingerprint across a fleet of `gqd serve` workers.
//
// Topology (docs/runtime.md): clients speak the ordinary newline-JSON
// protocol to a front Server hosting a Router; the Router forwards each
// request to a backend worker chosen by HashRing::Owners(fingerprint, R)
// and relays the response verbatim. Because every worker computes
// deterministic verdicts, a response is bit-identical no matter which
// replica served it — failover is invisible to clients.
//
// Placement: `load` is forwarded to a seed worker to learn the graph's
// fingerprint (GraphRegistry computes it), then replayed to the R ring
// owners and recorded in the routing table (name → fingerprint, owners,
// load line). Graph commands rotate round-robin across the R owners —
// every routed command is a pure read, so spreading across replicas is
// free capacity — and fail over through the rest of the owner list.
// Unknown graph names fall back to hashing the name itself, which keeps
// identically pre-loaded fleets routable.
//
// Failover: a transport error (worker died, possibly mid-request) records
// a health failure and retries the next replica — queries are pure, so
// re-execution is safe. A shed (Unavailable) tries the next replica
// immediately and only returns Unavailable to the client when every
// routable replica shed, with the smallest per-worker retry_after_ms
// hint. When all replicas are down the client sees Unavailable with a
// retry hint, never a hang.
//
// Health: a background loop probes every worker each probe_interval_ms
// (ping bypasses worker admission, so saturation is not death). Probe
// failures drive healthy → suspect → dead; a probe success from suspect
// or dead claims rejoining, replays the router's load log and recent eval
// log for the shards the worker owns (cache warming), then restores
// healthy. Rejoining workers take no traffic.
//
// Tracing (docs/observability.md): every routed eval/check — and any
// routed command the client sends with `"trace": true` — gets a minted
// TraceContext. Router-side spans (route.request, route.replica_pick,
// route.transport) record into a SpanCollector; each forwarded line
// carries the context as a `"trace"` traceparent string with the
// transport span as parent, so worker spans nest under the attempt that
// carried them. After the response, tail sampling decides whether to pay
// for collection: the client asked, the latency reached the command's
// rolling p99, the exemplar store has room, or --trace-out is recording.
// Collection drains the router's own spans plus each participating
// worker's (`spans` roundtrip, clock-offset aligned) and merges them into
// one cross-process tree keyed by the trace id. The slowest traces per
// command are retained as exemplars, surfaced by `stats`; every routed
// response gains `served_by` (worker index) and `failovers` (replica
// retries this request). Operational events (failovers, sheds,
// worker-state transitions, warm replays) go to the structured EventLog,
// drained by the `log` command.

#ifndef GQD_CLUSTER_ROUTER_H_
#define GQD_CLUSTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.h"
#include "cluster/worker_link.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "runtime/json.h"
#include "runtime/line_handler.h"

namespace gqd {

struct RouterOptions {
  /// Backend worker ports (127.0.0.1). Fleet membership is fixed for the
  /// router's lifetime; crashes are handled by health state, not removal.
  std::vector<std::uint16_t> worker_ports;
  /// Replication factor R: each graph is loaded on R ring owners. Clamped
  /// to the fleet size.
  std::size_t replication = 2;
  /// Pooled connections per worker (= per-worker in-flight cap).
  std::size_t pool_size = 4;
  /// Health-probe period.
  int probe_interval_ms = 50;
  /// Consecutive failures before a suspect worker is declared dead.
  int suspect_threshold = 3;
  /// Recent eval/check lines kept for cache warming on rejoin.
  std::size_t warm_log_capacity = 128;
  /// Fallback retry hint when the fleet is down and no worker supplied
  /// one.
  int retry_after_ms = 50;
  /// Tail-sampled slow-trace exemplars retained per command (0 disables
  /// the exemplar store, not tracing itself).
  std::size_t exemplar_capacity = 4;
  /// When non-empty, Stop() writes every merged trace collected over the
  /// router's lifetime to this path as one Chrome trace-event JSON file
  /// (one process track per participant). Forces collection on every
  /// traced request.
  std::string trace_out;
};

class Router : public LineHandler {
 public:
  explicit Router(const RouterOptions& options);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Starts the health loop. Workers need not be up yet — they enter
  /// through the probe/rejoin path as they come online.
  Status Start();
  /// Stops the health loop. Idempotent.
  void Stop();

  std::string HandleLine(const std::string& line, bool* shutdown) override;

  /// Point-in-time cluster counters (also exported as gqd_cluster_*).
  struct Snapshot {
    std::uint64_t requests = 0;        ///< lines routed to workers
    std::uint64_t failovers = 0;       ///< replica-to-replica retries
    std::uint64_t sheds_returned = 0;  ///< all replicas shed → client
    std::uint64_t all_down_returned = 0;
    std::uint64_t warm_replays = 0;    ///< rejoin warm cycles completed
    std::uint64_t warm_lines = 0;      ///< lines replayed while warming
    std::vector<WorkerState> worker_states;
    std::vector<std::uint64_t> worker_requests;
  };
  Snapshot GetSnapshot() const;

  WorkerState worker_state(std::size_t i) const {
    return workers_[i]->state();
  }
  std::size_t worker_count() const { return workers_.size(); }

  MetricsRegistry& metrics() { return metrics_; }

 private:
  struct RouteEntry {
    std::string fingerprint;
    std::string load_line;  ///< replayed to warm a rejoining owner
    std::vector<std::size_t> owners;
  };
  struct WarmEntry {
    std::string graph;
    std::string line;
  };
  /// One replica-failover pass over a shard's owners.
  struct AttemptOutcome {
    std::string response;  ///< the line to relay (success or error)
    bool success = false;  ///< response came from a worker, not ErrorLine
    int served_by = -1;    ///< worker index that produced the response
    std::uint64_t failovers = 0;  ///< replica retries within this request
    /// Workers that answered a traced roundtrip (may hold spans to drain).
    std::vector<std::size_t> participants;
  };
  /// A retained slow-request trace.
  struct Exemplar {
    std::string trace_id;
    std::uint64_t latency_us = 0;
    std::int64_t ts_ms = 0;  ///< wall clock at retention
    std::string tree_json;   ///< MergedSpanTreeToJson output
  };

  JsonValue HandlePing() const;
  JsonValue HandleStats();
  JsonValue HandleMetricsCmd();
  JsonValue HandleLogCmd(const JsonValue& request) const;
  std::string HandleShutdown(const JsonValue* id);
  std::string HandleLoad(const JsonValue& request, const JsonValue* id,
                         const std::string& line);
  std::string RouteGraphCommand(const std::string& cmd,
                                const JsonValue& request, const JsonValue* id,
                                const std::string& line);
  /// The replica-failover loop. With `context`, each attempt opens a
  /// route.transport span and forwards the line rewritten to carry the
  /// context (parented under that span) instead of `line` verbatim.
  AttemptOutcome AttemptReplicas(const std::string& cmd,
                                 const JsonValue& request, const JsonValue* id,
                                 const std::string& line,
                                 const TraceContext* context);
  /// Injects served_by/failovers — plus the merged trace tree when
  /// `tree_json` is given and the response is ok — into a relayed line.
  std::string WithRoutingFields(const AttemptOutcome& out,
                                const std::string* tree_json);

  /// Post-hoc tail-sampling decision for a completed traced request.
  bool QualifiesForCollection(const std::string& cmd,
                              std::uint64_t latency_us);
  /// Drains the router's own spans plus each participant worker's
  /// (`spans` roundtrip, clock-offset aligned) into one merged span set.
  std::vector<OwnedSpan> CollectTrace(
      const TraceContext& context,
      const std::vector<std::size_t>& participants);
  void RecordExemplar(const std::string& cmd, Exemplar exemplar);
  void AppendTraceSink(const std::vector<OwnedSpan>& spans);

  /// Owners for `graph` from the routing table, or the name-hash fallback.
  std::vector<std::size_t> OwnersFor(const std::string& graph);
  std::string ErrorLine(const JsonValue* id, const Status& status,
                        std::int64_t retry_after_ms = -1) const;

  void HealthLoop();
  /// Replays load lines + the recent eval log for shards `worker` owns.
  /// True when every line round-tripped.
  bool WarmWorker(WorkerLink& worker);
  void RecordEvalForWarmup(const std::string& graph, const std::string& line);
  void UpdateStateGauges();

  const RouterOptions options_;
  HashRing ring_;
  std::vector<std::unique_ptr<WorkerLink>> workers_;

  mutable std::mutex table_mutex_;
  std::unordered_map<std::string, RouteEntry> table_;
  std::deque<WarmEntry> warm_log_;

  /// Router-side spans for in-flight traced requests (shared across
  /// server threads; Take extracts one trace's spans by id).
  SpanCollector collector_;
  /// Tail-sampled exemplars, slowest-first per command.
  mutable std::mutex exemplar_mutex_;
  std::unordered_map<std::string, std::vector<Exemplar>> exemplars_;
  /// Spans destined for the --trace-out Chrome trace, bounded.
  static constexpr std::size_t kTraceSinkCapacity = 64 * 1024;
  mutable std::mutex sink_mutex_;
  std::vector<OwnedSpan> trace_sink_;
  /// Last observed worker states, for state-transition log events.
  std::vector<WorkerState> logged_states_;

  /// Round-robin cursor spreading reads across each shard's R owners.
  std::atomic<std::uint64_t> read_rotation_{0};

  std::atomic<bool> stopping_{false};
  std::mutex health_mutex_;
  std::condition_variable health_cv_;
  std::thread health_thread_;

  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> sheds_returned_{0};
  std::atomic<std::uint64_t> all_down_returned_{0};
  std::atomic<std::uint64_t> warm_replays_{0};
  std::atomic<std::uint64_t> warm_lines_{0};

  MetricsRegistry metrics_;
  Counter* requests_total_;
  Counter* failovers_total_;
  Counter* sheds_total_;
  Counter* all_down_total_;
  Counter* probes_ok_;
  Counter* probes_failed_;
  Counter* warm_replays_total_;
  Counter* warm_lines_total_;
  Counter* graph_loads_total_;
  Counter* replicated_loads_total_;
  Counter* traces_collected_total_;
  Histogram* request_latency_us_;

  /// Per-command latency histograms (also rendered by `metrics` as
  /// gqd_cluster_command_latency_us{command=...}); the map lets `stats`
  /// enumerate the commands seen so far for its quantile block.
  Histogram* CommandLatency(const std::string& cmd);
  mutable std::mutex command_mutex_;
  std::map<std::string, Histogram*> command_latency_;
};

}  // namespace gqd

#endif  // GQD_CLUSTER_ROUTER_H_
