// The router's view of one backend `gqd serve` worker: a fixed-size
// connection pool plus the health state machine.
//
// Connections: LineClient is single-threaded, so the link owns `pool_size`
// clients behind a checkout/checkin gate. The fixed pool doubles as the
// per-worker concurrency model — at most `pool_size` requests are in
// flight against a worker, and callers beyond that queue at the router
// rather than piling onto a backend that is already saturated.
//
// Health states (docs/robustness.md):
//
//   healthy ──failure──▶ suspect ──N consecutive failures──▶ dead
//      ▲                    │                                  │
//      └── warm replay ── rejoining ◀──── probe succeeds ──────┘
//
// Any failure (failed probe or a transport error on a routed request)
// moves healthy → suspect immediately; `suspect_threshold` consecutive
// failures latch dead. A successful probe from suspect or dead always
// passes through rejoining — the router replays its load/eval log before
// the worker takes traffic again, so a worker that restarted with an
// empty registry can never serve "unknown graph" to a client. Requests
// route to healthy and suspect workers only.

#ifndef GQD_CLUSTER_WORKER_LINK_H_
#define GQD_CLUSTER_WORKER_LINK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/client.h"

namespace gqd {

enum class WorkerState : int { kHealthy = 0, kSuspect, kDead, kRejoining };

const char* WorkerStateName(WorkerState state);

struct WorkerLinkOptions {
  std::uint16_t port = 0;
  /// Pooled connections == max in-flight requests against this worker.
  std::size_t pool_size = 4;
  /// Consecutive failures before suspect latches dead.
  int suspect_threshold = 3;
};

class WorkerLink {
 public:
  WorkerLink(std::size_t index, const WorkerLinkOptions& options);

  WorkerLink(const WorkerLink&) = delete;
  WorkerLink& operator=(const WorkerLink&) = delete;

  std::size_t index() const { return index_; }
  std::uint16_t port() const { return options_.port; }

  /// One request/response round trip on a pooled connection (connecting
  /// lazily). Blocks while all pooled connections are in flight. Any
  /// transport failure closes the connection, records a health failure
  /// and returns the error — the caller fails over to a replica.
  Result<std::string> Roundtrip(const std::string& line);

  /// Health probe on a dedicated (non-pooled) connection so probes are
  /// never starved by a saturated pool: sends {"cmd":"ping"}, which
  /// bypasses worker admission, so an overloaded-but-alive worker still
  /// probes healthy. Returns true on a pong. Does NOT record failures —
  /// the health loop owns that policy.
  bool Probe();

  WorkerState state() const {
    return static_cast<WorkerState>(state_.load(std::memory_order_acquire));
  }
  /// Healthy or suspect: may take routed traffic.
  bool Routable() const {
    WorkerState s = state();
    return s == WorkerState::kHealthy || s == WorkerState::kSuspect;
  }

  /// healthy → suspect; suspect/rejoining stay but count; the
  /// `suspect_threshold`-th consecutive failure latches dead.
  void RecordFailure();
  /// Resets the consecutive-failure count (request succeeded).
  void RecordSuccess();
  /// suspect/dead → rejoining. Returns false if the state changed under
  /// us (another thread already claimed the rejoin).
  bool BeginRejoin();
  /// rejoining → healthy (warm replay done).
  void CompleteRejoin();
  /// rejoining → dead (warm replay failed; wait for the next probe).
  void AbortRejoin();

  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Requests currently inside Roundtrip (in flight or waiting for a
  /// pooled connection) — the router's load-balancing signal.
  int in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  std::uint64_t failures() const {
    return failures_total_.load(std::memory_order_relaxed);
  }

 private:
  class PooledConnection;

  std::unique_ptr<LineClient> Checkout();
  void Checkin(std::unique_ptr<LineClient> client);

  const std::size_t index_;
  const WorkerLinkOptions options_;

  std::mutex pool_mutex_;
  std::condition_variable pool_available_;
  std::vector<std::unique_ptr<LineClient>> pool_;

  std::mutex probe_mutex_;
  LineClient probe_client_;

  std::atomic<int> state_{static_cast<int>(WorkerState::kHealthy)};
  std::atomic<int> consecutive_failures_{0};
  std::atomic<int> in_flight_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> failures_total_{0};
};

}  // namespace gqd

#endif  // GQD_CLUSTER_WORKER_LINK_H_
