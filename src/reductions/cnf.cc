#include "reductions/cnf.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>

#include "graph/generators.h"

namespace gqd {

Status CnfFormula::Validate() const {
  for (const auto& clause : clauses) {
    if (clause.empty()) {
      return Status::InvalidArgument("empty clause");
    }
    for (Literal lit : clause) {
      if (lit == 0 ||
          static_cast<std::size_t>(std::abs(lit)) > num_variables) {
        return Status::InvalidArgument("literal out of range");
      }
    }
  }
  return Status::OK();
}

bool CnfFormula::IsThreeCnf() const {
  for (const auto& clause : clauses) {
    if (clause.size() != 3) {
      return false;
    }
  }
  return true;
}

Result<CnfFormula> CnfFormula::ToThreeCnf() const {
  GQD_RETURN_NOT_OK(Validate());
  CnfFormula out;
  out.num_variables = num_variables;
  for (const auto& clause : clauses) {
    if (clause.size() > 3) {
      return Status::Unimplemented("clauses longer than 3 are not supported");
    }
    std::vector<Literal> padded = clause;
    while (padded.size() < 3) {
      padded.push_back(padded.back());
    }
    out.clauses.push_back(std::move(padded));
  }
  return out;
}

Result<CnfFormula> ParseDimacs(const std::string& text) {
  CnfFormula formula;
  std::istringstream is(text);
  std::string line;
  std::size_t line_number = 0;
  bool header_seen = false;
  std::vector<Literal> current;
  std::size_t declared_clauses = 0;
  while (std::getline(is, line)) {
    line_number++;
    if (line.empty() || line[0] == 'c') {
      continue;
    }
    auto error = [&](const std::string& msg) {
      return Status::InvalidArgument("line " + std::to_string(line_number) +
                                     ": " + msg);
    };
    if (line[0] == 'p') {
      std::istringstream header(line);
      std::string p, cnf;
      if (!(header >> p >> cnf >> formula.num_variables >>
            declared_clauses) ||
          cnf != "cnf") {
        return error("malformed DIMACS header");
      }
      header_seen = true;
      continue;
    }
    if (!header_seen) {
      return error("clause before DIMACS header");
    }
    std::istringstream body(line);
    Literal lit;
    while (body >> lit) {
      if (lit == 0) {
        if (current.empty()) {
          return error("empty clause in DIMACS input");
        }
        formula.clauses.push_back(current);
        current.clear();
      } else {
        current.push_back(lit);
      }
    }
  }
  if (!current.empty()) {
    return Status::InvalidArgument("line " + std::to_string(line_number) +
                                   ": unterminated clause (missing 0)");
  }
  if (declared_clauses != formula.clauses.size()) {
    return Status::InvalidArgument(
        "header declared " + std::to_string(declared_clauses) +
        " clauses but the file contains " +
        std::to_string(formula.clauses.size()));
  }
  GQD_RETURN_NOT_OK(formula.Validate());
  return formula;
}

std::string WriteDimacs(const CnfFormula& formula) {
  std::ostringstream os;
  os << "p cnf " << formula.num_variables << " " << formula.clauses.size()
     << "\n";
  for (const auto& clause : formula.clauses) {
    for (Literal lit : clause) {
      os << lit << " ";
    }
    os << "0\n";
  }
  return os.str();
}

bool Satisfies(const CnfFormula& formula, const Assignment& assignment) {
  for (const auto& clause : formula.clauses) {
    bool satisfied = false;
    for (Literal lit : clause) {
      std::size_t v = static_cast<std::size_t>(std::abs(lit));
      if (assignment[v] == (lit > 0)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) {
      return false;
    }
  }
  return true;
}

namespace {

enum class TruthValue : std::uint8_t { kUnset, kTrue, kFalse };

struct DpllState {
  const CnfFormula& formula;
  std::vector<TruthValue> values;  // index = variable
  std::size_t decisions = 0;
  std::size_t max_decisions;
  bool exhausted = false;

  bool LiteralTrue(Literal lit) const {
    TruthValue v = values[static_cast<std::size_t>(std::abs(lit))];
    return v == (lit > 0 ? TruthValue::kTrue : TruthValue::kFalse);
  }
  bool LiteralFalse(Literal lit) const {
    TruthValue v = values[static_cast<std::size_t>(std::abs(lit))];
    return v == (lit > 0 ? TruthValue::kFalse : TruthValue::kTrue);
  }

  /// Unit propagation to fixpoint; returns false on conflict. Appends
  /// assigned variables to `trail`.
  bool Propagate(std::vector<std::size_t>* trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& clause : formula.clauses) {
        Literal unit = 0;
        std::size_t unassigned = 0;
        bool satisfied = false;
        for (Literal lit : clause) {
          if (LiteralTrue(lit)) {
            satisfied = true;
            break;
          }
          if (!LiteralFalse(lit)) {
            unassigned++;
            unit = lit;
          }
        }
        if (satisfied) {
          continue;
        }
        if (unassigned == 0) {
          return false;  // conflict
        }
        if (unassigned == 1) {
          std::size_t v = static_cast<std::size_t>(std::abs(unit));
          values[v] = unit > 0 ? TruthValue::kTrue : TruthValue::kFalse;
          trail->push_back(v);
          changed = true;
        }
      }
    }
    return true;
  }

  bool Search() {
    if (++decisions > max_decisions) {
      exhausted = true;
      return false;
    }
    std::vector<std::size_t> trail;
    if (!Propagate(&trail)) {
      Undo(trail);
      return false;
    }
    // Pick the first unset variable appearing in an unsatisfied clause.
    std::size_t branch = 0;
    for (const auto& clause : formula.clauses) {
      bool satisfied = false;
      for (Literal lit : clause) {
        if (LiteralTrue(lit)) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) {
        continue;
      }
      for (Literal lit : clause) {
        std::size_t v = static_cast<std::size_t>(std::abs(lit));
        if (values[v] == TruthValue::kUnset) {
          branch = v;
          break;
        }
      }
      if (branch != 0) {
        break;
      }
    }
    if (branch == 0) {
      return true;  // every clause satisfied
    }
    for (TruthValue choice : {TruthValue::kTrue, TruthValue::kFalse}) {
      values[branch] = choice;
      if (Search()) {
        return true;
      }
      if (exhausted) {
        break;
      }
    }
    values[branch] = TruthValue::kUnset;
    Undo(trail);
    return false;
  }

  void Undo(const std::vector<std::size_t>& trail) {
    for (std::size_t v : trail) {
      values[v] = TruthValue::kUnset;
    }
  }
};

}  // namespace

Result<std::optional<Assignment>> SolveCnf(const CnfFormula& formula,
                                           std::size_t max_decisions) {
  GQD_RETURN_NOT_OK(formula.Validate());
  DpllState state{formula,
                  std::vector<TruthValue>(formula.num_variables + 1,
                                          TruthValue::kUnset),
                  0, max_decisions, false};
  if (state.Search()) {
    Assignment assignment(formula.num_variables + 1, false);
    for (std::size_t v = 1; v <= formula.num_variables; v++) {
      assignment[v] = state.values[v] == TruthValue::kTrue;
    }
    assert(Satisfies(formula, assignment));
    return std::optional<Assignment>(std::move(assignment));
  }
  if (state.exhausted) {
    return Status::ResourceExhausted("DPLL decision budget exhausted");
  }
  return std::optional<Assignment>();
}

CnfFormula RandomThreeCnf(std::size_t num_variables, std::size_t num_clauses,
                          std::uint64_t seed) {
  SplitMix64 rng(seed);
  CnfFormula formula;
  formula.num_variables = num_variables;
  for (std::size_t c = 0; c < num_clauses; c++) {
    std::vector<Literal> clause;
    for (int i = 0; i < 3; i++) {
      Literal v =
          static_cast<Literal>(rng.NextBelow(num_variables)) + 1;
      clause.push_back(rng.NextBool(1, 2) ? v : -v);
    }
    formula.clauses.push_back(std::move(clause));
  }
  return formula;
}

}  // namespace gqd
