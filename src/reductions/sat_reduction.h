// The Theorem 35 reduction (Figure 3): 3-CNF unsatisfiability →
// UCRDPQ-definability.
//
// Given a 3-CNF formula F over p_1..p_n with clauses C_1..C_m, the
// reduction builds a data graph (all nodes share one data value) and a
// unary relation S = {C_i} ∪ {L^j_i} such that
//     F is unsatisfiable  ⟺  S is UCRDPQ-definable.
// A satisfying assignment yields a data-graph homomorphism mapping the
// variable nodes to the truth nodes 1/0 and each clause node C_i to the
// "satisfied pattern" node R^{j_i}_i ∉ S — a violation of Lemma 34. The R
// family deliberately lacks R^0 (the all-false pattern), so an
// unsatisfiable F leaves every homomorphism trapped in S.
//
// Node/edge conventions (names used in the built graph):
//   one/zero          truth nodes: self loops {be, ga, top} / {be, ga, bot},
//                     mutual al and be edges
//   p<i> / np<i>      variable and negated-variable nodes: ga self loops,
//                     mutual al edges, be chains p<i> → p<i+1>
//   C<i>              clause nodes: ga chain, l1/l2/l3 to literal nodes
//   R<i>_<j>, L<i>_<j> pattern nodes (j = 3-bit literal pattern, MSB = l1):
//                     l1/l2/l3 to one/zero per bit of j, complete-bipartite
//                     ga edges to the next index's family, l self loop on L
//                     nodes only; R exists for j ≥ 1, L for j ≥ 0

#ifndef GQD_REDUCTIONS_SAT_REDUCTION_H_
#define GQD_REDUCTIONS_SAT_REDUCTION_H_

#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "homomorphism/data_graph_hom.h"
#include "reductions/cnf.h"

namespace gqd {

struct SatReduction {
  DataGraph graph;
  /// The unary target relation S = {C_i} ∪ {L^j_i}.
  TupleRelation relation{1};
};

/// Builds the Figure-3 reduction graph for an exactly-3-CNF formula.
Result<SatReduction> BuildSatReduction(const CnfFormula& formula);

/// The violating homomorphism induced by a satisfying assignment
/// (variables → one/zero, clauses → R^{j_i}_i, everything else identity).
/// Used by tests to exhibit Lemma 34's certificate constructively.
Result<NodeMapping> HomomorphismFromAssignment(const CnfFormula& formula,
                                               const SatReduction& reduction,
                                               const Assignment& assignment);

}  // namespace gqd

#endif  // GQD_REDUCTIONS_SAT_REDUCTION_H_
