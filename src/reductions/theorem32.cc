#include "reductions/theorem32.h"

namespace gqd {

DataGraph WithConstantDataValue(const DataGraph& graph) {
  DataGraph out;
  for (std::uint32_t a = 0; a < graph.NumLabels(); a++) {
    out.AddLabel(graph.labels().NameOf(a));
  }
  ValueId value = out.AddDataValue("0");
  for (NodeId v = 0; v < graph.NumNodes(); v++) {
    out.AddNode(value, graph.NodeName(v));
  }
  for (const Edge& e : graph.edges()) {
    out.AddEdge(e.from, e.label, e.to);
  }
  return out;
}

}  // namespace gqd
