// The Theorem 32 reduction: RPQ-definability → RDPQ_=-definability.
//
// Given a graph H (any data graph; its values are discarded), the
// reduction attaches the same data value to every node. On the resulting
// H', a non-empty relation is RDPQ_=-definable iff it is RPQ-definable on
// H: every ≠-restriction is empty and every =-restriction is the identity
// on H', so REE collapse to plain regexes.

#ifndef GQD_REDUCTIONS_THEOREM32_H_
#define GQD_REDUCTIONS_THEOREM32_H_

#include "graph/data_graph.h"

namespace gqd {

/// H → H': same nodes, names and edges; every node carries the data value
/// "0".
DataGraph WithConstantDataValue(const DataGraph& graph);

}  // namespace gqd

#endif  // GQD_REDUCTIONS_THEOREM32_H_
