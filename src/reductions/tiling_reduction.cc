#include "reductions/tiling_reduction.h"

#include <cassert>
#include <map>

#include "regex/ast.h"
#include "regex/nfa.h"
#include "rem/condition.h"

namespace gqd {

std::string TileLabelName(TileType t) { return "t" + std::to_string(t); }
std::string BarLabelName(TileType t) { return "u" + std::to_string(t); }
std::string DValueName(std::size_t k) { return "d" + std::to_string(k); }
std::string EValueName(std::size_t k) { return "e" + std::to_string(k); }

namespace {

/// A group of graph nodes treated as one "position" of a gadget chain: an
/// edge into the group targets every member (the paper's grey D-boxes).
using Box = std::vector<NodeId>;

class ReductionBuilder {
 public:
  explicit ReductionBuilder(const TilingInstance& instance)
      : instance_(instance), n_(instance.width_bits) {}

  Result<TilingReduction> Build() {
    GQD_RETURN_NOT_OK(instance_.Validate());
    SetUpAlphabetAndValues();
    BuildP2Side();
    BuildGadgets();
    GQD_RETURN_NOT_OK(graph_.Validate());
    TilingReduction out;
    out.graph = std::move(graph_);
    out.p1 = p1_;
    out.q1 = q1_;
    out.p2 = p2_;
    out.q2 = q2_;
    out.width_bits = n_;
    return out;
  }

 private:
  // --- Vocabulary ----------------------------------------------------------

  void SetUpAlphabetAndValues() {
    for (TileType t = 0; t < instance_.num_tile_types; t++) {
      tiles_.push_back(TileLabelName(t));
      bars_.push_back(BarLabelName(t));
    }
    all_tiles_ = tiles_;
    all_tiles_.insert(all_tiles_.end(), bars_.begin(), bars_.end());
    any_ = all_tiles_;
    any_.push_back(kAlphaLabel);
    t_or_alpha_ = tiles_;
    t_or_alpha_.push_back(kAlphaLabel);
    for (const std::string& name : any_) {
      graph_.AddLabel(name);
    }
    graph_.AddLabel(kDollarLabel);

    for (std::size_t k = 1; k <= n_; k++) {
      d_values_.push_back(graph_.AddDataValue(DValueName(k)));
    }
    for (std::size_t k = 1; k <= n_; k++) {
      e_values_.push_back(graph_.AddDataValue(EValueName(k)));
    }
    pool_ = d_values_;
    pool_.insert(pool_.end(), e_values_.begin(), e_values_.end());

    p1_ = graph_.AddNode(graph_.AddDataValue("xp1"), "p1");
    q1_ = graph_.AddNode(graph_.AddDataValue("xq1"), "q1");
    p2_ = graph_.AddNode(graph_.AddDataValue("xp2"), "p2");
    q2_ = graph_.AddNode(graph_.AddDataValue("xq2"), "q2");
  }

  ValueId DVal(std::size_t k) const { return d_values_[k - 1]; }
  ValueId EVal(std::size_t k) const { return e_values_[k - 1]; }

  // --- Graph primitives ----------------------------------------------------

  Box MakeBox() {
    Box box;
    box.reserve(pool_.size());
    for (ValueId v : pool_) {
      box.push_back(graph_.AddNode(v));
    }
    return box;
  }

  NodeId MakeFixed(ValueId value) { return graph_.AddNode(value); }

  void Connect(const Box& from, const std::vector<std::string>& letters,
               const Box& to) {
    for (NodeId u : from) {
      for (const std::string& letter : letters) {
        LabelId id = *graph_.labels().Find(letter);
        for (NodeId v : to) {
          graph_.AddEdge(u, id, v);
        }
      }
    }
  }

  /// Expands a regex segment after `entry`: NFA states become value-
  /// complete boxes; returns the exit box (including entry nodes when the
  /// regex accepts ε).
  Box ExpandRegex(const Box& entry, const RegexPtr& regex) {
    StringInterner labels = graph_.labels();
    Nfa nfa = CompileRegex(regex, &labels, /*intern_new_labels=*/false);
    std::map<NfaState, Box> boxes;
    std::map<NfaState, std::vector<NfaState>> closures;
    auto closure_of = [&](NfaState s) -> const std::vector<NfaState>& {
      auto it = closures.find(s);
      if (it == closures.end()) {
        it = closures.emplace(s, nfa.EpsilonClosure({s})).first;
      }
      return it->second;
    };
    auto box_of = [&](NfaState s) -> Box& {
      auto it = boxes.find(s);
      if (it == boxes.end()) {
        it = boxes.emplace(s, MakeBox()).first;
      }
      return it->second;
    };
    // Worklist of (source box, nfa state whose closure we fan out from).
    std::vector<NfaState> work;
    std::map<NfaState, bool> expanded;
    auto fan_out = [&](const Box& from, NfaState state) {
      for (NfaState p : closure_of(state)) {
        for (const auto& [label, target] : nfa.letter_edges[p]) {
          bool fresh = boxes.find(target) == boxes.end();
          Box& target_box = box_of(target);
          Connect(from, {labels.NameOf(label)}, target_box);
          if (fresh) {
            work.push_back(target);
          }
        }
      }
    };
    fan_out(entry, nfa.start);
    while (!work.empty()) {
      NfaState s = work.back();
      work.pop_back();
      if (expanded[s]) {
        continue;
      }
      expanded[s] = true;
      fan_out(boxes[s], s);
    }
    Box exits;
    auto accepts = [&](NfaState s) {
      for (NfaState p : closure_of(s)) {
        if (p == nfa.accept) {
          return true;
        }
      }
      return false;
    };
    if (accepts(nfa.start)) {
      exits = entry;
    }
    for (auto& [state, box] : boxes) {
      if (accepts(state)) {
        exits.insert(exits.end(), box.begin(), box.end());
      }
    }
    return exits;
  }

  // --- Gadget chains -------------------------------------------------------

  struct Chain {
    ReductionBuilder* builder;
    Box exits;

    void StepFixed(const std::vector<std::string>& letters, ValueId value) {
      Box next = {builder->MakeFixed(value)};
      builder->Connect(exits, letters, next);
      exits = std::move(next);
    }
    void StepBox(const std::vector<std::string>& letters) {
      Box next = builder->MakeBox();
      builder->Connect(exits, letters, next);
      exits = std::move(next);
    }
    void StepRegex(const RegexPtr& regex) {
      exits = builder->ExpandRegex(exits, regex);
    }
    /// Final $ into q1.
    void Finish() {
      builder->Connect(exits, {kDollarLabel}, {builder->q1_});
    }
  };

  Chain StartGadget() { return Chain{this, {p1_}}; }

  /// First address pinned to d_n .. d_1 (the reference the register trick
  /// stores), entered by $.
  void FixedFirstAddress(Chain* chain) {
    chain->StepFixed({kDollarLabel}, DVal(n_));
    for (std::size_t k = n_ - 1; k >= 1; k--) {
      chain->StepFixed({kAlphaLabel}, DVal(k));
      if (k == 1) {
        break;
      }
    }
  }

  /// An address of D-boxes with some positions pinned; entered via
  /// `entry_letters`. Positions run k = n .. 1.
  void Address(Chain* chain, const std::vector<std::string>& entry_letters,
               const std::map<std::size_t, ValueId>& pins) {
    for (std::size_t k = n_; k >= 1; k--) {
      const std::vector<std::string>& letters =
          (k == n_) ? entry_letters : std::vector<std::string>{kAlphaLabel};
      auto pin = pins.find(k);
      if (pin != pins.end()) {
        chain->StepFixed(letters, pin->second);
      } else {
        chain->StepBox(letters);
      }
      if (k == 1) {
        break;
      }
    }
  }

  RegexPtr AnyStar() const { return re::Star(re::AnyOf(any_)); }
  /// A tile letter (any) followed by anything — the generic suffix after a
  /// checked address, ending just before the final $.
  RegexPtr TileThenAnyStar() const {
    return re::Concat({re::AnyOf(all_tiles_), AnyStar()});
  }

  // --- The p2 side ---------------------------------------------------------

  void BuildP2Side() {
    // Bit boxes: position k offers the choice {d_k, e_k}.
    std::vector<Box> bits(n_ + 1);
    for (std::size_t k = 1; k <= n_; k++) {
      bits[k] = Box{graph_.AddNode(DVal(k)), graph_.AddNode(EVal(k))};
    }
    Connect({p2_}, {kDollarLabel}, bits[n_]);
    for (std::size_t k = n_; k >= 2; k--) {
      Connect(bits[k], {kAlphaLabel}, bits[k - 1]);
    }
    // Any tile letter starts the next address.
    Connect(bits[1], all_tiles_, bits[n_]);
    // A bar may instead end the encoding: F is a value-complete box (see
    // header comment), then $ to q2.
    Box f_box = MakeBox();
    Connect(bits[1], bars_, f_box);
    Connect(f_box, {kDollarLabel}, {q2_});
  }

  // --- The p1 gadget bank --------------------------------------------------

  void BuildGadgets() {
    BuildSecondAddressGadgets();     // G-a
    BuildSuccessorGadgets();         // G-b
    BuildBarColumnGadgets();         // G-c (+ bar right after first address)
    BuildTileAtLastColumnGadget();   // G-d
    BuildInitialTileGadget();        // G-e
    BuildFinalTileGadget();          // G-f
    BuildHorizontalGadgets();        // G-g
    BuildVerticalGadgets();          // G-h, G-i
  }

  /// G-a: the second address must encode 1 (bit 1 set, bits n..2 clear).
  /// One gadget per bit k pinning the *wrong* value at position k.
  void BuildSecondAddressGadgets() {
    for (std::size_t k = 1; k <= n_; k++) {
      bool expected_bit = (k == 1);
      ValueId wrong = expected_bit ? DVal(k) : EVal(k);
      Chain chain = StartGadget();
      FixedFirstAddress(&chain);
      Address(&chain, all_tiles_, {{k, wrong}});
      chain.StepRegex(TileThenAnyStar());
      chain.Finish();
    }
  }

  /// G-b: consecutive addresses (A, B), both at position ≥ 2, that are not
  /// binary increments. Complete error basis:
  ///  (i)  A's bits below k all 1 and B_k = A_k (carry should flip bit k);
  ///  (ii) some j < k with A_j = 0 and B_k ≠ A_k (no carry, bit k flipped).
  void BuildSuccessorGadgets() {
    for (std::size_t k = 1; k <= n_; k++) {
      // (i): pin A's positions k-1..1 to e (bit 1) and A_k = B_k = v.
      for (ValueId v : {DVal(k), EVal(k)}) {
        Chain chain = StartGadget();
        FixedFirstAddress(&chain);
        chain.StepRegex(AnyStar());
        std::map<std::size_t, ValueId> pins_a = {{k, v}};
        for (std::size_t lower = 1; lower < k; lower++) {
          pins_a[lower] = EVal(lower);
        }
        Address(&chain, all_tiles_, pins_a);
        Address(&chain, all_tiles_, {{k, v}});
        chain.StepRegex(TileThenAnyStar());
        chain.Finish();
      }
      // (ii): pin A_j = d_j (bit 0) for some j < k, and B_k ≠ A_k.
      for (std::size_t j = 1; j < k; j++) {
        for (bool a_bit : {false, true}) {
          ValueId a_val = a_bit ? EVal(k) : DVal(k);
          ValueId b_val = a_bit ? DVal(k) : EVal(k);
          Chain chain = StartGadget();
          FixedFirstAddress(&chain);
          chain.StepRegex(AnyStar());
          Address(&chain, all_tiles_, {{k, a_val}, {j, DVal(j)}});
          Address(&chain, all_tiles_, {{k, b_val}});
          chain.StepRegex(TileThenAnyStar());
          chain.Finish();
        }
      }
    }
  }

  /// G-c: an address immediately followed by a T̄ letter has some bit k = 0
  /// (bars must sit at column 2^n − 1 = all ones). Variants for the checked
  /// address being the first one or a later one.
  void BuildBarColumnGadgets() {
    for (std::size_t k = 1; k <= n_; k++) {
      Chain chain = StartGadget();
      FixedFirstAddress(&chain);
      chain.StepRegex(AnyStar());
      Address(&chain, all_tiles_, {{k, DVal(k)}});
      chain.StepRegex(re::Concat({re::AnyOf(bars_), AnyStar()}));
      chain.Finish();
    }
    // Bar right after the first address (column 0 is never the last).
    Chain chain = StartGadget();
    FixedFirstAddress(&chain);
    chain.StepRegex(re::Concat({re::AnyOf(bars_), AnyStar()}));
    chain.Finish();
  }

  /// G-d: an address of all ones followed by a plain-T letter (column
  /// 2^n − 1 must use the T̄ copy).
  void BuildTileAtLastColumnGadget() {
    Chain chain = StartGadget();
    FixedFirstAddress(&chain);
    chain.StepRegex(AnyStar());
    std::map<std::size_t, ValueId> pins;
    for (std::size_t k = 1; k <= n_; k++) {
      pins[k] = EVal(k);
    }
    Address(&chain, all_tiles_, pins);
    chain.StepRegex(re::Concat({re::AnyOf(tiles_), AnyStar()}));
    chain.Finish();
  }

  /// G-e: the first tile letter is not t_i.
  void BuildInitialTileGadget() {
    std::vector<std::string> wrong;
    for (const std::string& letter : all_tiles_) {
      if (letter != TileLabelName(instance_.initial_tile)) {
        wrong.push_back(letter);
      }
    }
    Chain chain = StartGadget();
    Address(&chain, {kDollarLabel}, {});
    chain.StepRegex(re::Concat({re::AnyOf(wrong), AnyStar()}));
    chain.Finish();
  }

  /// G-f: the last tile letter (right before the final $) is not t̄_f.
  void BuildFinalTileGadget() {
    std::vector<std::string> wrong;
    for (const std::string& letter : all_tiles_) {
      if (letter != BarLabelName(instance_.final_tile)) {
        wrong.push_back(letter);
      }
    }
    Chain chain = StartGadget();
    chain.StepBox({kDollarLabel});
    chain.StepRegex(re::Concat({AnyStar(), re::AnyOf(wrong)}));
    chain.Finish();
  }

  /// G-g: horizontally adjacent incompatible tiles: t_a at a non-last
  /// column, the next tile (either copy) incompatible with it.
  void BuildHorizontalGadgets() {
    for (TileType a = 0; a < instance_.num_tile_types; a++) {
      for (TileType b = 0; b < instance_.num_tile_types; b++) {
        if (instance_.horizontal.count({a, b})) {
          continue;
        }
        Chain chain = StartGadget();
        chain.StepBox({kDollarLabel});
        chain.StepRegex(AnyStar());
        Address(&chain, {TileLabelName(a)}, {});
        chain.StepRegex(re::Concat(
            {re::AnyOf({TileLabelName(b), BarLabelName(b)}), AnyStar()}));
        chain.Finish();
      }
    }
  }

  /// G-h/G-i: vertically adjacent incompatible tiles. Two addresses with
  /// pairwise-equal values = same column; exactly one row boundary (T̄)
  /// between them = consecutive rows.
  void BuildVerticalGadgets() {
    RegexPtr t_alpha_star = re::Star(re::AnyOf(t_or_alpha_));
    for (TileType a = 0; a < instance_.num_tile_types; a++) {
      for (TileType b = 0; b < instance_.num_tile_types; b++) {
        if (instance_.vertical.count({a, b})) {
          continue;
        }
        // G-h: both at the last column (letters are the T̄ copies; the row
        // boundary is t̄_a itself).
        {
          Chain chain = StartGadget();
          chain.StepBox({kDollarLabel});
          chain.StepRegex(AnyStar());
          std::map<std::size_t, ValueId> pins;
          for (std::size_t k = 1; k <= n_; k++) {
            pins[k] = EVal(k);
          }
          Address(&chain, all_tiles_, pins);
          chain.StepRegex(
              re::Concat({re::Letter(BarLabelName(a)), t_alpha_star}));
          Address(&chain, tiles_, pins);
          chain.StepRegex(
              re::Concat({re::Letter(BarLabelName(b)), AnyStar()}));
          chain.Finish();
        }
        // G-i-a: both at a column c ≥ 1 (plain letters; one T̄ strictly
        // between; the second address is entered by a plain T letter).
        {
          Chain chain = StartGadget();
          chain.StepBox({kDollarLabel});
          chain.StepRegex(AnyStar());
          std::map<std::size_t, ValueId> pins;
          for (std::size_t k = 1; k <= n_; k++) {
            pins[k] = DVal(k);
          }
          Address(&chain, all_tiles_, pins);
          chain.StepRegex(re::Concat({re::Letter(TileLabelName(a)),
                                      t_alpha_star, re::AnyOf(bars_),
                                      t_alpha_star}));
          Address(&chain, tiles_, pins);
          chain.StepRegex(
              re::Concat({re::Letter(TileLabelName(b)), AnyStar()}));
          chain.Finish();
        }
        // G-i-b: both at column 0 (the row boundary T̄ is the letter
        // entering the second address).
        {
          Chain chain = StartGadget();
          chain.StepBox({kDollarLabel});
          chain.StepRegex(AnyStar());
          std::map<std::size_t, ValueId> pins;
          for (std::size_t k = 1; k <= n_; k++) {
            pins[k] = DVal(k);
          }
          Address(&chain, all_tiles_, pins);
          chain.StepRegex(
              re::Concat({re::Letter(TileLabelName(a)), t_alpha_star}));
          Address(&chain, bars_, pins);
          chain.StepRegex(
              re::Concat({re::Letter(TileLabelName(b)), AnyStar()}));
          chain.Finish();
        }
      }
    }
  }

  const TilingInstance& instance_;
  std::size_t n_;
  DataGraph graph_;
  NodeId p1_ = 0, q1_ = 0, p2_ = 0, q2_ = 0;
  std::vector<std::string> tiles_, bars_, all_tiles_, any_, t_or_alpha_;
  std::vector<ValueId> d_values_, e_values_, pool_;
};

}  // namespace

Result<TilingReduction> BuildTilingReduction(const TilingInstance& instance) {
  ReductionBuilder builder(instance);
  return builder.Build();
}

Result<RemPtr> TilingEncodingRem(const TilingInstance& instance,
                                 const TilingSolution& solution) {
  GQD_RETURN_NOT_OK(instance.Validate());
  if (!IsLegalTiling(instance, solution) &&
      (solution.rows.empty() ||
       solution.rows[0].size() != instance.Width())) {
    return Status::InvalidArgument("solution has the wrong shape");
  }
  std::size_t n = instance.width_bits;
  std::size_t width = instance.Width();
  auto reg = [](std::size_t k) { return k - 1; };  // r_k ↔ index k-1

  // Everything after τ(0,0): per position (i, j) ≠ (0, 0), the address
  // conditions then the tile letter; then the final $.
  auto tile_letter = [&](std::size_t i, std::size_t j) {
    TileType t = solution.rows[i][j];
    return (j == width - 1) ? BarLabelName(t) : TileLabelName(t);
  };

  RemPtr e = rem::Letter(tile_letter(0, 0));
  // Build left-to-right from τ(0,0) onwards.
  for (std::size_t i = 0; i < solution.rows.size(); i++) {
    for (std::size_t j = 0; j < width; j++) {
      if (i == 0 && j == 0) {
        continue;
      }
      for (std::size_t k = n; k >= 1; k--) {
        bool bit = (j >> (k - 1)) & 1;
        ConditionPtr c = bit ? cond::RegisterNeq(reg(k))
                             : cond::RegisterEq(reg(k));
        e = rem::Test(std::move(e), std::move(c));
        if (k > 1) {
          e = rem::Concat({std::move(e), rem::Letter(kAlphaLabel)});
        }
      }
      e = rem::Concat({std::move(e), rem::Letter(tile_letter(i, j))});
    }
  }
  e = rem::Concat({std::move(e), rem::Letter(kDollarLabel)});

  // Prefix: $ then the first address with binds ↓r_n α ↓r_{n-1} ... ↓r_1,
  // nested so each bind scopes over the whole remainder.
  for (std::size_t k = 1; k <= n; k++) {
    e = rem::Bind({reg(k)}, std::move(e));
    if (k < n) {
      e = rem::Concat({rem::Letter(kAlphaLabel), std::move(e)});
    }
  }
  e = rem::Concat({rem::Letter(kDollarLabel), std::move(e)});
  return e;
}

std::optional<TilingSolution> DecodeTilingPath(const TilingInstance& instance,
                                               const DataPath& path,
                                               const StringInterner& labels) {
  std::size_t n = instance.width_bits;
  std::size_t width = instance.Width();
  auto dollar = labels.Find(kDollarLabel);
  auto alpha = labels.Find(kAlphaLabel);
  if (!dollar || !alpha) {
    return std::nullopt;
  }
  // Letter classification.
  enum class Kind { kDollar, kAlpha, kTile, kBar, kOther };
  auto classify = [&](LabelId id) {
    if (id == *dollar) {
      return Kind::kDollar;
    }
    if (id == *alpha) {
      return Kind::kAlpha;
    }
    const std::string& name = labels.NameOf(id);
    if (!name.empty() && name[0] == 't') {
      return Kind::kTile;
    }
    if (!name.empty() && name[0] == 'u') {
      return Kind::kBar;
    }
    return Kind::kOther;
  };
  auto tile_of = [&](LabelId id) {
    return static_cast<TileType>(std::stoul(labels.NameOf(id).substr(1)));
  };

  std::size_t m = path.letters.size();
  if (m < 2 + n || classify(path.letters[0]) != Kind::kDollar ||
      classify(path.letters[m - 1]) != Kind::kDollar) {
    return std::nullopt;
  }
  // Parse: ($) [addr of n values α-separated] tile ... bar ($).
  // Value positions: index 1 .. m-1 between the dollars.
  // Invariant at the top of the loop: `pos` is the value index of the
  // current address's first value (letters[pos-1] entered it).
  std::size_t pos = 1;  // value index after the opening $
  std::vector<std::vector<ValueId>> addresses;
  std::vector<std::pair<Kind, TileType>> tile_sequence;
  while (true) {
    // Read one address: n values separated by α. After reading, `pos` is
    // the value index of the address's last value.
    std::vector<ValueId> address;
    for (std::size_t k = 0; k < n; k++) {
      if (k > 0) {
        if (pos >= m || classify(path.letters[pos]) != Kind::kAlpha) {
          return std::nullopt;
        }
        pos++;
      }
      address.push_back(path.values[pos]);
    }
    addresses.push_back(std::move(address));
    // The letter after the address must be a tile or bar.
    if (pos >= m) {
      return std::nullopt;
    }
    Kind kind = classify(path.letters[pos]);
    if (kind != Kind::kTile && kind != Kind::kBar) {
      return std::nullopt;
    }
    tile_sequence.emplace_back(kind, tile_of(path.letters[pos]));
    pos++;  // value index after the tile letter (next address or F slot)
    if (pos >= m) {
      return std::nullopt;  // the path must still have the closing $
    }
    if (classify(path.letters[pos]) == Kind::kDollar) {
      if (pos != m - 1) {
        return std::nullopt;  // interior $ — not an encoding
      }
      break;  // values[pos] is the F-slot value; decoding complete
    }
  }
  if (tile_sequence.empty()) {
    return std::nullopt;
  }

  // Column indices relative to the first address.
  const std::vector<ValueId>& reference = addresses[0];
  if (addresses.size() != tile_sequence.size()) {
    return std::nullopt;
  }
  std::vector<std::size_t> columns;
  for (const auto& address : addresses) {
    std::size_t column = 0;
    for (std::size_t k = 1; k <= n; k++) {
      // Position k is stored at vector index n - k (addresses run n..1).
      bool bit = address[n - k] != reference[n - k];
      if (bit) {
        column |= (std::size_t{1} << (k - 1));
      }
    }
    columns.push_back(column);
  }
  // Structural checks: columns cycle 0,1,...,W-1,0,...; bars exactly at
  // column W-1; count a multiple of W.
  if (tile_sequence.size() % width != 0) {
    return std::nullopt;
  }
  for (std::size_t i = 0; i < tile_sequence.size(); i++) {
    if (columns[i] != i % width) {
      return std::nullopt;
    }
    bool is_bar = tile_sequence[i].first == Kind::kBar;
    if (is_bar != (columns[i] == width - 1)) {
      return std::nullopt;
    }
  }
  TilingSolution solution;
  for (std::size_t i = 0; i < tile_sequence.size(); i += width) {
    std::vector<TileType> row;
    for (std::size_t j = 0; j < width; j++) {
      row.push_back(tile_sequence[i + j].second);
    }
    solution.rows.push_back(std::move(row));
  }
  return solution;
}

}  // namespace gqd
