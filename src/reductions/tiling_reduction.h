// The Theorem 25 reduction: exponential-width corridor tiling →
// RDPQ_mem-definability.
//
// Given a tiling instance with width 2^n, the reduction builds a data graph
// with distinguished nodes p1, q1, p2, q2 such that a legal tiling exists
// iff {⟨p2, q2⟩} is RDPQ_mem-definable. Encodings of tilings are data paths
//   $ b_n α b_{n-1} α ... α b_1 t  b_n' α ... α b_1' t' ... t̄_final $
// where each address block of n values encodes a column index in binary
// *relative to the first address*: bit k is 0 when the value equals the
// first address's k-th value and 1 otherwise (the register trick of
// REM (3) in the paper).
//
// Components:
//  * the p2 side admits every well-shaped path (each bit position offers a
//    {d_k, e_k} choice box);
//  * the p1 side is a bank of error gadgets, one per way a path can fail
//    to encode a legal tiling; D-boxes (value-complete node groups) make an
//    automorphic copy of every erroneous p2-path pass through some gadget
//    (condition 4 of the paper's proof).
//
// Deviations from the paper's sketch, recorded here and in DESIGN.md:
//  * the pre-final node F is a value-complete box (a single fresh-valued F
//    would break automorphic copying into the gadgets, whose corresponding
//    positions carry pool values);
//  * binary-increment errors use O(n²) gadget instances (pairs j < k plus
//    full-carry cases) rather than the paper's O(n) sketch — still
//    polynomial, and verifiably complete;
//  * Lemma-15 expressions e[w] + REM evaluation validate conditions 2–4
//    empirically in the test suite (see test_reductions.cc).

#ifndef GQD_REDUCTIONS_TILING_REDUCTION_H_
#define GQD_REDUCTIONS_TILING_REDUCTION_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/data_path.h"
#include "reductions/tiling.h"
#include "rem/ast.h"

namespace gqd {

/// Label-name conventions of the reduction alphabet
/// Σ = T ∪ T̄ ∪ {$, α}.
std::string TileLabelName(TileType t);  ///< "t<i>" — tiles in T
std::string BarLabelName(TileType t);   ///< "u<i>" — the T̄ copy
inline constexpr const char* kDollarLabel = "$";
inline constexpr const char* kAlphaLabel = "al";

/// Data-value name of the k-th d/e pool value (k = 1..n).
std::string DValueName(std::size_t k);  ///< "d<k>"
std::string EValueName(std::size_t k);  ///< "e<k>"

struct TilingReduction {
  DataGraph graph;
  NodeId p1, q1, p2, q2;
  std::size_t width_bits;
};

/// Builds the reduction graph (polynomial in the instance size).
Result<TilingReduction> BuildTilingReduction(const TilingInstance& instance);

/// Expression (3) of the paper: the REM (n registers) whose language is
/// exactly the encodings of the given tiling. Evaluating it on the
/// reduction graph of a *legal* tiling yields {⟨p2, q2⟩}.
Result<RemPtr> TilingEncodingRem(const TilingInstance& instance,
                                 const TilingSolution& solution);

/// Decodes a data path (letters named per the conventions above, resolved
/// against `labels`) as a tiling encoding. Returns nullopt when the path is
/// not even well-shaped; a returned solution may still be an *illegal*
/// tiling — test with IsLegalTiling.
std::optional<TilingSolution> DecodeTilingPath(const TilingInstance& instance,
                                               const DataPath& path,
                                               const StringInterner& labels);

}  // namespace gqd

#endif  // GQD_REDUCTIONS_TILING_REDUCTION_H_
