#include "reductions/sat_reduction.h"

#include <cassert>
#include <string>

namespace gqd {

namespace {

std::string VarNodeName(std::size_t v) { return "p" + std::to_string(v); }
std::string NegNodeName(std::size_t v) { return "np" + std::to_string(v); }
std::string ClauseNodeName(std::size_t i) { return "C" + std::to_string(i); }
std::string RNodeName(std::size_t i, std::size_t j) {
  return "R" + std::to_string(i) + "_" + std::to_string(j);
}
std::string LNodeName(std::size_t i, std::size_t j) {
  return "L" + std::to_string(i) + "_" + std::to_string(j);
}

}  // namespace

Result<SatReduction> BuildSatReduction(const CnfFormula& formula) {
  GQD_RETURN_NOT_OK(formula.Validate());
  if (!formula.IsThreeCnf()) {
    return Status::InvalidArgument(
        "the Figure-3 reduction needs an exactly-3-CNF formula "
        "(use CnfFormula::ToThreeCnf)");
  }
  std::size_t n = formula.num_variables;
  std::size_t m = formula.clauses.size();

  SatReduction out;
  DataGraph& g = out.graph;
  for (const char* label :
       {"al", "be", "ga", "top", "bot", "l", "l1", "l2", "l3"}) {
    g.AddLabel(label);
  }
  ValueId value = g.AddDataValue("0");  // every node shares one value

  NodeId one = g.AddNode(value, "one");
  NodeId zero = g.AddNode(value, "zero");
  for (const char* label : {"be", "ga"}) {
    g.AddEdgeByName(one, label, one);
    g.AddEdgeByName(zero, label, zero);
  }
  g.AddEdgeByName(one, "top", one);
  g.AddEdgeByName(zero, "bot", zero);
  g.AddEdgeByName(one, "al", zero);
  g.AddEdgeByName(zero, "al", one);
  g.AddEdgeByName(one, "be", zero);
  g.AddEdgeByName(zero, "be", one);

  // Variable and negated-variable nodes.
  std::vector<NodeId> pos(n + 1), neg(n + 1);
  for (std::size_t v = 1; v <= n; v++) {
    pos[v] = g.AddNode(value, VarNodeName(v));
    neg[v] = g.AddNode(value, NegNodeName(v));
  }
  for (std::size_t v = 1; v <= n; v++) {
    g.AddEdgeByName(pos[v], "ga", pos[v]);
    g.AddEdgeByName(neg[v], "ga", neg[v]);
    g.AddEdgeByName(pos[v], "al", neg[v]);
    g.AddEdgeByName(neg[v], "al", pos[v]);
    if (v < n) {
      g.AddEdgeByName(pos[v], "be", pos[v + 1]);
      g.AddEdgeByName(neg[v], "be", neg[v + 1]);
    }
  }

  auto literal_node = [&](Literal lit) {
    std::size_t v = static_cast<std::size_t>(std::abs(lit));
    return lit > 0 ? pos[v] : neg[v];
  };

  // Clause nodes with l1/l2/l3 edges to their literal nodes.
  std::vector<NodeId> clause_nodes(m);
  for (std::size_t i = 0; i < m; i++) {
    clause_nodes[i] = g.AddNode(value, ClauseNodeName(i));
    const char* edge_labels[3] = {"l1", "l2", "l3"};
    for (int k = 0; k < 3; k++) {
      g.AddEdgeByName(clause_nodes[i], edge_labels[k],
                      literal_node(formula.clauses[i][k]));
    }
    if (i > 0) {
      g.AddEdgeByName(clause_nodes[i - 1], "ga", clause_nodes[i]);
    }
  }

  // Pattern nodes: R^j_i for j = 1..7, L^j_i for j = 0..7. Bit k (MSB = l1)
  // of j selects the one/zero target of edge l_k.
  std::vector<std::vector<NodeId>> r_nodes(m, std::vector<NodeId>(8, 0));
  std::vector<std::vector<NodeId>> l_nodes(m, std::vector<NodeId>(8, 0));
  auto add_bit_edges = [&](NodeId node, std::size_t j) {
    const char* edge_labels[3] = {"l1", "l2", "l3"};
    for (int k = 0; k < 3; k++) {
      bool bit = (j >> (2 - k)) & 1;  // l1 = most significant bit
      g.AddEdgeByName(node, edge_labels[k], bit ? one : zero);
    }
  };
  for (std::size_t i = 0; i < m; i++) {
    for (std::size_t j = 1; j < 8; j++) {
      r_nodes[i][j] = g.AddNode(value, RNodeName(i, j));
      add_bit_edges(r_nodes[i][j], j);
    }
    for (std::size_t j = 0; j < 8; j++) {
      l_nodes[i][j] = g.AddNode(value, LNodeName(i, j));
      add_bit_edges(l_nodes[i][j], j);
      g.AddEdgeByName(l_nodes[i][j], "l", l_nodes[i][j]);
    }
  }
  // Complete-bipartite ga edges within each family between consecutive
  // clause indices.
  for (std::size_t i = 0; i + 1 < m; i++) {
    for (std::size_t j = 1; j < 8; j++) {
      for (std::size_t k = 1; k < 8; k++) {
        g.AddEdgeByName(r_nodes[i][j], "ga", r_nodes[i + 1][k]);
      }
    }
    for (std::size_t j = 0; j < 8; j++) {
      for (std::size_t k = 0; k < 8; k++) {
        g.AddEdgeByName(l_nodes[i][j], "ga", l_nodes[i + 1][k]);
      }
    }
  }

  // S = {⟨C_i⟩} ∪ {⟨L^j_i⟩}.
  for (std::size_t i = 0; i < m; i++) {
    out.relation.Insert({clause_nodes[i]});
    for (std::size_t j = 0; j < 8; j++) {
      out.relation.Insert({l_nodes[i][j]});
    }
  }
  GQD_RETURN_NOT_OK(g.Validate());
  return out;
}

Result<NodeMapping> HomomorphismFromAssignment(const CnfFormula& formula,
                                               const SatReduction& reduction,
                                               const Assignment& assignment) {
  if (!Satisfies(formula, assignment)) {
    return Status::InvalidArgument("assignment does not satisfy the formula");
  }
  const DataGraph& g = reduction.graph;
  NodeMapping mapping(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); v++) {
    mapping[v] = v;  // default: identity
  }
  GQD_ASSIGN_OR_RETURN(NodeId one, g.FindNode("one"));
  GQD_ASSIGN_OR_RETURN(NodeId zero, g.FindNode("zero"));
  for (std::size_t v = 1; v <= formula.num_variables; v++) {
    GQD_ASSIGN_OR_RETURN(NodeId p, g.FindNode(VarNodeName(v)));
    GQD_ASSIGN_OR_RETURN(NodeId np, g.FindNode(NegNodeName(v)));
    mapping[p] = assignment[v] ? one : zero;
    mapping[np] = assignment[v] ? zero : one;
  }
  for (std::size_t i = 0; i < formula.clauses.size(); i++) {
    std::size_t pattern = 0;
    for (int k = 0; k < 3; k++) {
      Literal lit = formula.clauses[i][k];
      bool literal_value =
          (lit > 0) == assignment[static_cast<std::size_t>(std::abs(lit))];
      if (literal_value) {
        pattern |= (std::size_t{1} << (2 - k));
      }
    }
    assert(pattern >= 1);  // the assignment satisfies every clause
    GQD_ASSIGN_OR_RETURN(NodeId c, g.FindNode(ClauseNodeName(i)));
    GQD_ASSIGN_OR_RETURN(NodeId r, g.FindNode(RNodeName(i, pattern)));
    mapping[c] = r;
  }
  return mapping;
}

}  // namespace gqd
