#include "reductions/tiling.h"

#include <algorithm>
#include <map>
#include <queue>

namespace gqd {

Status TilingInstance::Validate() const {
  if (num_tile_types == 0) {
    return Status::InvalidArgument("no tile types");
  }
  if (initial_tile >= num_tile_types || final_tile >= num_tile_types) {
    return Status::InvalidArgument("initial/final tile out of range");
  }
  for (const auto& [a, b] : horizontal) {
    if (a >= num_tile_types || b >= num_tile_types) {
      return Status::InvalidArgument("horizontal pair out of range");
    }
  }
  for (const auto& [a, b] : vertical) {
    if (a >= num_tile_types || b >= num_tile_types) {
      return Status::InvalidArgument("vertical pair out of range");
    }
  }
  if (width_bits == 0 || width_bits > 4) {
    return Status::OutOfRange("width_bits must be in [1, 4] for this solver");
  }
  return Status::OK();
}

bool IsLegalTiling(const TilingInstance& instance,
                   const TilingSolution& solution) {
  std::size_t width = instance.Width();
  if (solution.rows.empty()) {
    return false;
  }
  for (const auto& row : solution.rows) {
    if (row.size() != width) {
      return false;
    }
    for (TileType t : row) {
      if (t >= instance.num_tile_types) {
        return false;
      }
    }
    for (std::size_t j = 0; j + 1 < width; j++) {
      if (!instance.horizontal.count({row[j], row[j + 1]})) {
        return false;
      }
    }
  }
  for (std::size_t i = 0; i + 1 < solution.rows.size(); i++) {
    for (std::size_t j = 0; j < width; j++) {
      if (!instance.vertical.count(
              {solution.rows[i][j], solution.rows[i + 1][j]})) {
        return false;
      }
    }
  }
  return solution.rows.front()[0] == instance.initial_tile &&
         solution.rows.back()[width - 1] == instance.final_tile;
}

Result<std::optional<TilingSolution>> SolveCorridorTiling(
    const TilingInstance& instance, std::size_t max_rows_enumerated) {
  GQD_RETURN_NOT_OK(instance.Validate());
  std::size_t width = instance.Width();

  // Enumerate horizontally-valid rows by DFS.
  std::vector<std::vector<TileType>> rows;
  {
    std::vector<std::pair<std::vector<TileType>, TileType>> work;
    for (TileType t = instance.num_tile_types; t-- > 0;) {
      work.push_back({{}, t});
    }
    while (!work.empty()) {
      auto [prefix, next] = std::move(work.back());
      work.pop_back();
      if (!prefix.empty() &&
          !instance.horizontal.count({prefix.back(), next})) {
        continue;
      }
      prefix.push_back(next);
      if (prefix.size() == width) {
        rows.push_back(std::move(prefix));
        if (rows.size() > max_rows_enumerated) {
          return Status::ResourceExhausted("too many horizontally-valid rows");
        }
        continue;
      }
      for (TileType t = instance.num_tile_types; t-- > 0;) {
        work.push_back({prefix, t});
      }
    }
  }

  // Row-compatibility BFS: start rows have row[0] = t_i; accepting rows
  // have row[width-1] = t_f (a single row may be both).
  auto vertically_compatible = [&](const std::vector<TileType>& below,
                                   const std::vector<TileType>& above) {
    for (std::size_t j = 0; j < width; j++) {
      if (!instance.vertical.count({below[j], above[j]})) {
        return false;
      }
    }
    return true;
  };

  std::vector<std::size_t> parent(rows.size(), rows.size());
  std::vector<bool> visited(rows.size(), false);
  std::queue<std::size_t> frontier;
  for (std::size_t i = 0; i < rows.size(); i++) {
    if (rows[i][0] == instance.initial_tile) {
      visited[i] = true;
      frontier.push(i);
    }
  }
  std::optional<std::size_t> accepting;
  while (!frontier.empty() && !accepting.has_value()) {
    std::size_t current = frontier.front();
    frontier.pop();
    if (rows[current][width - 1] == instance.final_tile) {
      accepting = current;
      break;
    }
    for (std::size_t next = 0; next < rows.size(); next++) {
      if (!visited[next] && vertically_compatible(rows[current], rows[next])) {
        visited[next] = true;
        parent[next] = current;
        frontier.push(next);
      }
    }
  }
  if (!accepting.has_value()) {
    return std::optional<TilingSolution>();
  }
  TilingSolution solution;
  for (std::size_t at = *accepting;; at = parent[at]) {
    solution.rows.push_back(rows[at]);
    if (parent[at] == rows.size()) {
      break;
    }
  }
  std::reverse(solution.rows.begin(), solution.rows.end());
  return std::optional<TilingSolution>(std::move(solution));
}

}  // namespace gqd
