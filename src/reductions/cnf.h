// CNF formulas, a DIMACS parser, and a DPLL solver — the coNP-complete
// source problem of Theorem 35 (UCRDPQ-definability): the paper reduces
// *unsatisfiability* of 3-CNF to definability, so the SAT solver is the
// oracle that validates the reduction.

#ifndef GQD_REDUCTIONS_CNF_H_
#define GQD_REDUCTIONS_CNF_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace gqd {

/// A literal: +v for variable v, -v for its negation (v >= 1, DIMACS-style).
using Literal = std::int32_t;

/// A CNF formula over variables 1..num_variables.
struct CnfFormula {
  std::size_t num_variables = 0;
  std::vector<std::vector<Literal>> clauses;

  Status Validate() const;

  /// True iff every clause has exactly three literals.
  bool IsThreeCnf() const;

  /// Pads/splits clauses into exactly-3-literal form over the same
  /// variables (repeating literals to pad; splitting is not needed for the
  /// reduction tests, so clauses longer than 3 are rejected).
  Result<CnfFormula> ToThreeCnf() const;
};

/// Parses DIMACS cnf ("p cnf <vars> <clauses>" header, clauses terminated
/// by 0, "c" comment lines).
Result<CnfFormula> ParseDimacs(const std::string& text);

/// Renders DIMACS text.
std::string WriteDimacs(const CnfFormula& formula);

/// An assignment: index v holds the value of variable v (index 0 unused).
using Assignment = std::vector<bool>;

/// True iff `assignment` satisfies the formula.
bool Satisfies(const CnfFormula& formula, const Assignment& assignment);

/// DPLL with unit propagation. Returns a satisfying assignment or nullopt
/// (UNSAT). `max_decisions` bounds the branching effort.
Result<std::optional<Assignment>> SolveCnf(const CnfFormula& formula,
                                           std::size_t max_decisions =
                                               10'000'000);

/// Deterministic random 3-CNF generator (benchmark workloads).
CnfFormula RandomThreeCnf(std::size_t num_variables, std::size_t num_clauses,
                          std::uint64_t seed);

}  // namespace gqd

#endif  // GQD_REDUCTIONS_CNF_H_
