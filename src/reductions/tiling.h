// The exponential-width corridor tiling problem — the EXPSPACE-complete
// source problem of the paper's Theorem 25 lower bound.
//
// An instance is (T, C_h, C_v, t_i, t_f, n): tile types, horizontal and
// vertical compatibility relations, an initial and final tile type, and a
// width exponent (the corridor has 2^n columns). The question: is there an
// R and a tiling τ : [R] × [2^n − 1] → T with τ(0,0) = t_i,
// τ(R, 2^n − 1) = t_f, horizontally and vertically compatible throughout?
//
// The brute-force solver (usable only for tiny instances, by design)
// enumerates horizontally-valid rows and searches the row-compatibility
// graph; it is the oracle that validates the Theorem-25 reduction.

#ifndef GQD_REDUCTIONS_TILING_H_
#define GQD_REDUCTIONS_TILING_H_

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/status.h"

namespace gqd {

/// Tile types are dense indices 0 .. num_tile_types-1.
using TileType = std::uint32_t;

struct TilingInstance {
  std::size_t num_tile_types = 0;
  /// (left, right) pairs allowed horizontally adjacent.
  std::set<std::pair<TileType, TileType>> horizontal;
  /// (below, above) pairs allowed vertically adjacent.
  std::set<std::pair<TileType, TileType>> vertical;
  TileType initial_tile = 0;  ///< t_i at row 0, column 0
  TileType final_tile = 0;    ///< t_f at row R, column 2^n − 1
  std::size_t width_bits = 1; ///< n; corridor width = 2^n

  std::size_t Width() const { return std::size_t{1} << width_bits; }

  Status Validate() const;
};

/// A solution: rows bottom-up, each of width 2^n.
struct TilingSolution {
  std::vector<std::vector<TileType>> rows;
};

/// Verifies a candidate solution against the instance.
bool IsLegalTiling(const TilingInstance& instance,
                   const TilingSolution& solution);

/// Brute-force decision + witness. Enumerates horizontally-valid rows
/// (≤ |T|^(2^n), hence tiny instances only) and BFS's the vertical
/// row-compatibility graph. Returns nullopt when no tiling exists.
Result<std::optional<TilingSolution>> SolveCorridorTiling(
    const TilingInstance& instance, std::size_t max_rows_enumerated = 200'000);

}  // namespace gqd

#endif  // GQD_REDUCTIONS_TILING_H_
