// The lint pass manager: the "compiler front end" of the query stack.
//
// Runs the analysis passes (register dataflow, condition analysis,
// expression/automaton hygiene, graph-relative checks) over a query AST and
// collects their Diagnostics. Passes are registered per expression family;
// options select a target graph (enabling graph-relative passes and
// alphabet-aware automaton hygiene) and can restrict the run to a subset of
// passes by name.
//
// Wired in three places:
//   * the `gqd lint` CLI subcommand (tools/gqd_cli.cpp),
//   * the opt-in evaluation pre-flight (eval/preflight.h),
//   * the synthesis post-pass (synthesis/lint_postpass.h).

#ifndef GQD_ANALYSIS_PASS_MANAGER_H_
#define GQD_ANALYSIS_PASS_MANAGER_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "graph/data_graph.h"
#include "regex/ast.h"
#include "rem/ast.h"
#include "ree/ast.h"

namespace gqd {

struct AnalysisOptions {
  /// Target graph; null disables graph-relative passes. Non-owning.
  const DataGraph* graph = nullptr;
  /// Drop note-severity findings from the result.
  bool include_notes = true;
  /// When non-empty, run only the passes named here (see LintPassNames()).
  std::vector<std::string> only_passes;
};

/// Lints one expression; diagnostics are deduplicated, in pass order.
std::vector<Diagnostic> LintRem(const RemPtr& expression,
                                const AnalysisOptions& options = {});
std::vector<Diagnostic> LintRee(const ReePtr& expression,
                                const AnalysisOptions& options = {});
std::vector<Diagnostic> LintRegex(const RegexPtr& expression,
                                  const AnalysisOptions& options = {});

/// Names of all registered passes, for CLI help and pass selection:
/// register-dataflow, condition-analysis, emptiness, redundancy,
/// automaton-hygiene, plan, graph-checks.
const std::vector<std::string>& LintPassNames();

}  // namespace gqd

#endif  // GQD_ANALYSIS_PASS_MANAGER_H_
