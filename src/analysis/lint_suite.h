// Lint suites: a tiny text format for linting many queries in one run.
//
// Suite files (see examples/data/lint_defects.suite) contain one entry per
// line:
//   <language> <expression>
// where <language> is regex | rem | ree and the expression is that
// family's concrete syntax. Blank lines and `#` comments are skipped.
// Expressions that fail to parse become GQD-PARSE-001 error diagnostics on
// their entry rather than aborting the run.

#ifndef GQD_ANALYSIS_LINT_SUITE_H_
#define GQD_ANALYSIS_LINT_SUITE_H_

#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/pass_manager.h"
#include "common/status.h"

namespace gqd {

/// One linted suite entry.
struct LintSuiteEntry {
  std::string language;         ///< "regex", "rem" or "ree".
  std::string expression_text;  ///< Raw concrete syntax from the file.
  std::vector<Diagnostic> diagnostics;
};

/// Parses and lints every entry of a suite. Fails only on malformed suite
/// structure (unknown language, missing expression); per-expression parse
/// errors surface as GQD-PARSE-001 diagnostics.
Result<std::vector<LintSuiteEntry>> RunLintSuite(
    const std::string& suite_text, const AnalysisOptions& options = {});

/// Text report: per entry, a header line plus DiagnosticsToText (or "clean").
std::string LintSuiteToText(const std::vector<LintSuiteEntry>& entries);

/// JSON report: {"entries":[{"language":...,"expression":...,
/// "diagnostics":[...],...}]}.
std::string LintSuiteToJson(const std::vector<LintSuiteEntry>& entries);

/// True iff any entry carries an error-severity diagnostic.
bool SuiteHasErrors(const std::vector<LintSuiteEntry>& entries);

}  // namespace gqd

#endif  // GQD_ANALYSIS_LINT_SUITE_H_
