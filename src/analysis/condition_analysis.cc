#include "analysis/condition_analysis.h"

namespace gqd {

namespace {

MintermMask FullMask(std::size_t k) {
  std::size_t count = NumMinterms(k);
  return count == 64 ? ~MintermMask{0} : ((MintermMask{1} << count) - 1);
}

/// Recursive dead-branch walk. Reports a child of ∨ whose minterm set is
/// empty (the disjunct can never fire) and a child of ∧ whose minterm set is
/// full (the conjunct never filters anything).
void FindDeadBranches(const ConditionPtr& condition, std::size_t k,
                      const std::string& context, std::size_t source_offset,
                      std::vector<Diagnostic>* diagnostics) {
  if (condition->kind != ConditionKind::kAnd &&
      condition->kind != ConditionKind::kOr &&
      condition->kind != ConditionKind::kNot) {
    return;
  }
  MintermMask full = FullMask(k);
  for (const ConditionPtr& child : condition->children) {
    MintermMask child_mask = ConditionToMinterms(child, k);
    if (condition->kind == ConditionKind::kOr && child_mask == 0) {
      diagnostics->push_back(Diagnostic{
          DiagnosticSeverity::kWarning, "GQD-COND-002",
          "disjunct `" + ConditionToString(child) +
              "` is unsatisfiable; the branch is dead",
          context, source_offset});
    }
    if (condition->kind == ConditionKind::kAnd && child_mask == full) {
      diagnostics->push_back(Diagnostic{
          DiagnosticSeverity::kWarning, "GQD-COND-002",
          "conjunct `" + ConditionToString(child) +
              "` is a tautology; the branch filters nothing",
          context, source_offset});
    }
    FindDeadBranches(child, k, context, source_offset, diagnostics);
  }
}

void WalkTests(const RemPtr& node, std::vector<Diagnostic>* diagnostics) {
  if (node->kind == RemKind::kCondition) {
    AnalyzeCondition(node->condition, RemToString(node), diagnostics,
                     node->source_offset);
  }
  for (const RemPtr& child : node->children) {
    WalkTests(child, diagnostics);
  }
}

}  // namespace

void AnalyzeCondition(const ConditionPtr& condition,
                      const std::string& context,
                      std::vector<Diagnostic>* diagnostics,
                      std::size_t source_offset) {
  std::size_t k = ConditionNumRegisters(condition);
  if (k > kMaxAnalyzableRegisters) {
    return;  // wider than the minterm machinery supports
  }
  MintermMask mask = ConditionToMinterms(condition, k);
  if (mask == 0) {
    diagnostics->push_back(Diagnostic{
        DiagnosticSeverity::kError, "GQD-COND-001",
        "condition `" + ConditionToString(condition) +
            "` is unsatisfiable; the enclosing test matches nothing",
        context, source_offset});
  } else if (mask == FullMask(k) && condition->kind != ConditionKind::kTrue) {
    diagnostics->push_back(Diagnostic{
        DiagnosticSeverity::kNote, "GQD-COND-003",
        "condition `" + ConditionToString(condition) +
            "` is a tautology; the test can be dropped (write T if the "
            "emphasis is intended)",
        context, source_offset});
  }
  FindDeadBranches(condition, k, context, source_offset, diagnostics);
}

void RunConditionAnalysisPass(const RemPtr& expression,
                              std::vector<Diagnostic>* diagnostics) {
  WalkTests(expression, diagnostics);
}

}  // namespace gqd
