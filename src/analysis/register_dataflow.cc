#include "analysis/register_dataflow.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <set>
#include <string>

#include "rem/condition.h"

namespace gqd {

namespace {

/// Set of possibly-stored registers, one bit per register (caps k at 64;
/// registers beyond that are not analyzed).
using StoreMask = std::uint64_t;

constexpr std::size_t kMaxTrackedRegisters = 64;

StoreMask RegisterBit(std::size_t index) {
  return index < kMaxTrackedRegisters ? (StoreMask{1} << index) : 0;
}

/// Appends the vacuous reads of `condition` under may-store set `may`.
void CollectVacuousReads(const ConditionPtr& condition, StoreMask may,
                         std::set<VacuousRead>* out) {
  if (condition == nullptr) {
    return;
  }
  switch (condition->kind) {
    case ConditionKind::kTrue:
      return;
    case ConditionKind::kRegisterEq:
    case ConditionKind::kRegisterNeq: {
      std::size_t index = condition->register_index;
      if (index >= kMaxTrackedRegisters) {
        return;  // beyond the tracked range; never reported
      }
      if ((may & RegisterBit(index)) == 0) {
        out->insert(VacuousRead{
            index, condition->kind == ConditionKind::kRegisterEq});
      }
      return;
    }
    case ConditionKind::kAnd:
    case ConditionKind::kOr:
    case ConditionKind::kNot:
      for (const ConditionPtr& child : condition->children) {
        CollectVacuousReads(child, may, out);
      }
      return;
  }
}

/// Forward may-store analysis over the AST. `report` enables read
/// collection; e⁺ bodies are first iterated to a fixpoint with reporting
/// off, then re-analyzed once with the fixpoint in-state (a read is vacuous
/// only if *no* path, including looping ones, stores first).
class AstAnalyzer {
 public:
  StoreMask Analyze(const RemPtr& node, StoreMask in, bool report) {
    switch (node->kind) {
      case RemKind::kEpsilon:
      case RemKind::kLetter:
        return in;
      case RemKind::kUnion: {
        StoreMask out = 0;
        for (const RemPtr& child : node->children) {
          out |= Analyze(child, in, report);
        }
        return out;
      }
      case RemKind::kConcat: {
        StoreMask state = in;
        for (const RemPtr& child : node->children) {
          state = Analyze(child, state, report);
        }
        return state;
      }
      case RemKind::kPlus: {
        StoreMask fix = in;
        while (true) {
          StoreMask out = Analyze(node->children[0], fix, false);
          if ((fix | out) == fix) {
            break;
          }
          fix |= out;
        }
        return Analyze(node->children[0], fix, report);
      }
      case RemKind::kCondition: {
        // e[c] tests the last value of e's subpath: reads happen in the
        // out-state of the child.
        StoreMask out = Analyze(node->children[0], in, report);
        if (report) {
          std::set<VacuousRead> reads;
          CollectVacuousReads(node->condition, out, &reads);
          for (const VacuousRead& read : reads) {
            sites_.push_back(VacuousReadSite{node, read});
          }
        }
        return out;
      }
      case RemKind::kBind: {
        // ↓r̄.e stores the first value: the store precedes everything in e.
        StoreMask stored = in;
        for (std::size_t r : node->registers) {
          stored |= RegisterBit(r);
        }
        return Analyze(node->children[0], stored, report);
      }
    }
    return in;
  }

  std::vector<VacuousReadSite> TakeSites() { return std::move(sites_); }

 private:
  std::vector<VacuousReadSite> sites_;
};

/// Collects every register index mentioned by condition atoms.
void CollectReadRegisters(const ConditionPtr& condition,
                          std::set<std::size_t>* out) {
  if (condition == nullptr) {
    return;
  }
  if (condition->kind == ConditionKind::kRegisterEq ||
      condition->kind == ConditionKind::kRegisterNeq) {
    out->insert(condition->register_index);
    return;
  }
  for (const ConditionPtr& child : condition->children) {
    CollectReadRegisters(child, out);
  }
}

void CollectStoresAndReads(const RemPtr& node, std::set<std::size_t>* stored,
                           std::set<std::size_t>* read) {
  if (node->kind == RemKind::kBind) {
    stored->insert(node->registers.begin(), node->registers.end());
  }
  if (node->kind == RemKind::kCondition) {
    CollectReadRegisters(node->condition, read);
  }
  for (const RemPtr& child : node->children) {
    CollectStoresAndReads(child, stored, read);
  }
}

/// Display name of register `index` in concrete syntax (r1 = index 0).
std::string RegisterName(std::size_t index) {
  return "r" + std::to_string(index + 1);
}

}  // namespace

std::vector<VacuousReadSite> AstVacuousReads(const RemPtr& expression) {
  AstAnalyzer analyzer;
  analyzer.Analyze(expression, 0, /*report=*/true);
  return analyzer.TakeSites();
}

std::vector<VacuousRead> AutomatonVacuousReads(const RegisterAutomaton& ra) {
  std::vector<StoreMask> may(ra.num_states, 0);
  std::vector<bool> visited(ra.num_states, false);
  std::deque<RaState> worklist;
  auto propagate = [&](RaState to, StoreMask mask) {
    if (!visited[to]) {
      visited[to] = true;
      may[to] = mask;
      worklist.push_back(to);
    } else if ((may[to] | mask) != may[to]) {
      may[to] |= mask;
      worklist.push_back(to);
    }
  };
  if (ra.num_states == 0) {
    return {};
  }
  visited[ra.start] = true;
  worklist.push_back(ra.start);
  while (!worklist.empty()) {
    RaState state = worklist.front();
    worklist.pop_front();
    for (const RegisterAutomaton::StoreEdge& edge : ra.store_edges[state]) {
      StoreMask mask = may[state];
      for (std::size_t r : edge.registers) {
        mask |= RegisterBit(r);
      }
      propagate(edge.to, mask);
    }
    for (const RegisterAutomaton::CheckEdge& edge : ra.check_edges[state]) {
      propagate(edge.to, may[state]);
    }
    for (const RegisterAutomaton::LetterEdge& edge : ra.letter_edges[state]) {
      propagate(edge.to, may[state]);
    }
  }
  std::set<VacuousRead> reads;
  for (RaState state = 0; state < ra.num_states; state++) {
    if (!visited[state]) {
      continue;  // unreachable: no run ever evaluates these conditions
    }
    for (const RegisterAutomaton::CheckEdge& edge : ra.check_edges[state]) {
      CollectVacuousReads(edge.condition, may[state], &reads);
    }
  }
  return {reads.begin(), reads.end()};
}

std::vector<VacuousRead> DeduplicateReads(
    const std::vector<VacuousReadSite>& sites) {
  std::set<VacuousRead> reads;
  for (const VacuousReadSite& site : sites) {
    reads.insert(site.read);
  }
  return {reads.begin(), reads.end()};
}

std::vector<std::size_t> DeadStores(const RemPtr& expression) {
  std::set<std::size_t> stored;
  std::set<std::size_t> read;
  CollectStoresAndReads(expression, &stored, &read);
  std::vector<std::size_t> dead;
  std::set_difference(stored.begin(), stored.end(), read.begin(), read.end(),
                      std::back_inserter(dead));
  return dead;
}

/// Source anchor for a dead-store finding: the first bind that stores into
/// `index` (document order), kNoSourceOffset when built programmatically.
std::size_t FindBindOffset(const RemPtr& node, std::size_t index) {
  if (node->kind == RemKind::kBind &&
      std::find(node->registers.begin(), node->registers.end(), index) !=
          node->registers.end()) {
    return node->source_offset;
  }
  for (const RemPtr& child : node->children) {
    std::size_t at = FindBindOffset(child, index);
    if (at != kNoSourceOffset) {
      return at;
    }
  }
  return kNoSourceOffset;
}

void RunRegisterDataflowPass(const RemPtr& expression,
                             std::vector<Diagnostic>* diagnostics) {
  for (const VacuousReadSite& site : AstVacuousReads(expression)) {
    const std::string name = RegisterName(site.read.register_index);
    if (site.read.is_equality) {
      diagnostics->push_back(Diagnostic{
          DiagnosticSeverity::kError, "GQD-REG-001",
          "register " + name +
              " is compared with = before any possible store; the test is "
              "constantly false (an empty register equals nothing, "
              "Definition 3)",
          RemToString(site.test), site.test->source_offset});
    } else {
      diagnostics->push_back(Diagnostic{
          DiagnosticSeverity::kWarning, "GQD-REG-002",
          "register " + name +
              " is compared with != before any possible store; the test is "
              "constantly true (an empty register differs from everything, "
              "Definition 3)",
          RemToString(site.test), site.test->source_offset});
    }
  }
  for (std::size_t index : DeadStores(expression)) {
    diagnostics->push_back(Diagnostic{
        DiagnosticSeverity::kWarning, "GQD-REG-003",
        "register " + RegisterName(index) +
            " is stored but never read by any condition; the bind has no "
            "effect",
        "", FindBindOffset(expression, index)});
  }
}

}  // namespace gqd
