#include "analysis/lint_suite.h"

#include <sstream>

#include "regex/parser.h"
#include "rem/parser.h"
#include "ree/parser.h"

namespace gqd {

namespace {

std::vector<Diagnostic> LintOne(const std::string& language,
                                const std::string& text,
                                const AnalysisOptions& options) {
  Status parse_status = Status::OK();
  if (language == "regex") {
    Result<RegexPtr> parsed = ParseRegex(text);
    if (parsed.ok()) {
      return LintRegex(parsed.value(), options);
    }
    parse_status = parsed.status();
  } else if (language == "rem") {
    Result<RemPtr> parsed = ParseRem(text);
    if (parsed.ok()) {
      return LintRem(parsed.value(), options);
    }
    parse_status = parsed.status();
  } else {
    Result<ReePtr> parsed = ParseRee(text);
    if (parsed.ok()) {
      return LintRee(parsed.value(), options);
    }
    parse_status = parsed.status();
  }
  return {Diagnostic{DiagnosticSeverity::kError, "GQD-PARSE-001",
                     parse_status.ToString(), text}};
}

}  // namespace

Result<std::vector<LintSuiteEntry>> RunLintSuite(
    const std::string& suite_text, const AnalysisOptions& options) {
  std::vector<LintSuiteEntry> entries;
  std::istringstream in(suite_text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    line_number++;
    std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') {
      continue;
    }
    std::size_t space = line.find_first_of(" \t", start);
    if (space == std::string::npos) {
      return Status::InvalidArgument(
          "suite line " + std::to_string(line_number) +
          ": expected `<language> <expression>`");
    }
    std::string language = line.substr(start, space - start);
    if (language != "regex" && language != "rem" && language != "ree") {
      return Status::InvalidArgument(
          "suite line " + std::to_string(line_number) +
          ": unknown language `" + language + "` (want regex|rem|ree)");
    }
    std::size_t expr_start = line.find_first_not_of(" \t", space);
    if (expr_start == std::string::npos) {
      return Status::InvalidArgument("suite line " +
                                     std::to_string(line_number) +
                                     ": missing expression");
    }
    std::string expression = line.substr(expr_start);
    while (!expression.empty() &&
           (expression.back() == '\r' || expression.back() == ' ' ||
            expression.back() == '\t')) {
      expression.pop_back();
    }
    LintSuiteEntry entry;
    entry.language = language;
    entry.expression_text = expression;
    entry.diagnostics = LintOne(language, expression, options);
    // Anchor findings to line:column within the entry's expression text.
    ResolveDiagnosticLocations(expression, &entry.diagnostics);
    entries.push_back(std::move(entry));
  }
  return entries;
}

std::string LintSuiteToText(const std::vector<LintSuiteEntry>& entries) {
  std::ostringstream out;
  for (const LintSuiteEntry& entry : entries) {
    out << entry.language << " `" << entry.expression_text << "`:\n";
    if (entry.diagnostics.empty()) {
      out << "  clean\n";
      continue;
    }
    std::istringstream lines(DiagnosticsToText(entry.diagnostics));
    std::string line;
    while (std::getline(lines, line)) {
      out << "  " << line << "\n";
    }
  }
  return out.str();
}

std::string LintSuiteToJson(const std::vector<LintSuiteEntry>& entries) {
  std::ostringstream out;
  out << "{\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); i++) {
    const LintSuiteEntry& entry = entries[i];
    if (i > 0) {
      out << ",";
    }
    out << "{\"language\":\"" << JsonEscape(entry.language)
        << "\",\"expression\":\"" << JsonEscape(entry.expression_text)
        << "\",\"report\":" << DiagnosticsToJson(entry.diagnostics) << "}";
  }
  out << "]}";
  return out.str();
}

bool SuiteHasErrors(const std::vector<LintSuiteEntry>& entries) {
  for (const LintSuiteEntry& entry : entries) {
    if (HasErrors(entry.diagnostics)) {
      return true;
    }
  }
  return false;
}

}  // namespace gqd
