#include "analysis/pass_manager.h"

#include <algorithm>
#include <functional>
#include <set>

#include "analysis/condition_analysis.h"
#include "analysis/graph_checks.h"
#include "analysis/hygiene.h"
#include "analysis/plan/automaton_analysis.h"
#include "analysis/register_dataflow.h"
#include "common/interner.h"
#include "rem/register_automaton.h"

namespace gqd {

namespace {

bool PassSelected(const AnalysisOptions& options, const std::string& name) {
  if (options.only_passes.empty()) {
    return true;
  }
  return std::find(options.only_passes.begin(), options.only_passes.end(),
                   name) != options.only_passes.end();
}

/// Runs the selected passes of one family's table, then deduplicates and
/// applies the severity filter.
template <typename PassTable>
std::vector<Diagnostic> RunPasses(const PassTable& passes,
                                  const AnalysisOptions& options) {
  std::vector<Diagnostic> diagnostics;
  for (const auto& [name, run] : passes) {
    if (PassSelected(options, name)) {
      run(&diagnostics);
    }
  }
  // Deduplicate (shared subtrees can repeat a finding verbatim), keeping
  // first occurrences in pass order.
  std::vector<Diagnostic> result;
  std::set<std::string> seen;
  for (Diagnostic& d : diagnostics) {
    if (!options.include_notes && d.severity == DiagnosticSeverity::kNote) {
      continue;
    }
    std::string key = d.code + "\x1f" + d.message + "\x1f" + d.subexpression;
    if (seen.insert(std::move(key)).second) {
      result.push_back(std::move(d));
    }
  }
  return result;
}

using Pass =
    std::pair<std::string, std::function<void(std::vector<Diagnostic>*)>>;

/// Compiles for hygiene analysis: against the graph's alphabet when given
/// (unknown letters become dead fragments, surfacing as unreachable/dead
/// states), otherwise interning every letter (pure structural hygiene).
RegisterAutomaton CompileForHygiene(const RemPtr& expression,
                                    const DataGraph* graph) {
  if (graph != nullptr) {
    StringInterner labels = graph->labels();
    return CompileRem(expression, &labels, /*intern_new_labels=*/false);
  }
  StringInterner labels;
  return CompileRem(expression, &labels, /*intern_new_labels=*/true);
}

}  // namespace

std::vector<Diagnostic> LintRem(const RemPtr& expression,
                                const AnalysisOptions& options) {
  const DataGraph* graph = options.graph;
  std::vector<Pass> passes = {
      {"register-dataflow",
       [&](std::vector<Diagnostic>* d) {
         RunRegisterDataflowPass(expression, d);
       }},
      {"condition-analysis",
       [&](std::vector<Diagnostic>* d) {
         RunConditionAnalysisPass(expression, d);
       }},
      {"emptiness",
       [&](std::vector<Diagnostic>* d) {
         RunRemEmptinessPass(expression, graph, d);
       }},
      {"redundancy",
       [&](std::vector<Diagnostic>* d) {
         RunRemRedundancyPass(expression, d);
       }},
      {"automaton-hygiene",
       [&](std::vector<Diagnostic>* d) {
         RunAutomatonHygienePass(CompileForHygiene(expression, graph), d);
       }},
      {"plan",
       [&](std::vector<Diagnostic>* d) {
         AppendPlanDiagnostics(
             AnalyzeAutomaton(CompileForHygiene(expression, graph)), d);
       }},
  };
  if (graph != nullptr) {
    passes.push_back({"graph-checks", [&](std::vector<Diagnostic>* d) {
                        RunRemGraphChecksPass(expression, *graph, d);
                      }});
  }
  return RunPasses(passes, options);
}

std::vector<Diagnostic> LintRee(const ReePtr& expression,
                                const AnalysisOptions& options) {
  const DataGraph* graph = options.graph;
  std::vector<Pass> passes = {
      {"emptiness",
       [&](std::vector<Diagnostic>* d) {
         RunReeEmptinessPass(expression, graph, d);
       }},
      {"redundancy",
       [&](std::vector<Diagnostic>* d) {
         RunReeRedundancyPass(expression, d);
       }},
  };
  if (graph != nullptr) {
    passes.push_back({"graph-checks", [&](std::vector<Diagnostic>* d) {
                        RunReeGraphChecksPass(expression, *graph, d);
                      }});
  }
  return RunPasses(passes, options);
}

std::vector<Diagnostic> LintRegex(const RegexPtr& expression,
                                  const AnalysisOptions& options) {
  const DataGraph* graph = options.graph;
  std::vector<Pass> passes = {
      {"emptiness",
       [&](std::vector<Diagnostic>* d) {
         RunRegexEmptinessPass(expression, graph, d);
       }},
      {"redundancy",
       [&](std::vector<Diagnostic>* d) {
         RunRegexRedundancyPass(expression, d);
       }},
  };
  if (graph != nullptr) {
    passes.push_back({"graph-checks", [&](std::vector<Diagnostic>* d) {
                        RunRegexGraphChecksPass(expression, *graph, d);
                      }});
  }
  return RunPasses(passes, options);
}

const std::vector<std::string>& LintPassNames() {
  static const std::vector<std::string> kNames = {
      "register-dataflow", "condition-analysis", "emptiness",
      "redundancy",        "automaton-hygiene",  "plan",
      "graph-checks",
  };
  return kNames;
}

}  // namespace gqd
