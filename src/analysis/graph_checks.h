// Graph-relative checks (GQD-GRF-001/-002).
//
// A query is evaluated against a concrete data graph G = (V, E, ρ) over a
// finite alphabet Σ and data values with δ distinct classes:
//   * a letter of the expression outside Σ labels no edge of G, so the atom
//     matches nothing — GQD-GRF-001, error (the classic silently-vacuous
//     query this subsystem exists to catch);
//   * an REM using k > δ registers cannot distinguish more than δ values —
//     by Lemma 23 the extra registers are provably useless on G —
//     GQD-GRF-002, warning.

#ifndef GQD_ANALYSIS_GRAPH_CHECKS_H_
#define GQD_ANALYSIS_GRAPH_CHECKS_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "graph/data_graph.h"
#include "regex/ast.h"
#include "rem/ast.h"
#include "ree/ast.h"

namespace gqd {

void RunRemGraphChecksPass(const RemPtr& expression, const DataGraph& graph,
                           std::vector<Diagnostic>* diagnostics);
void RunReeGraphChecksPass(const ReePtr& expression, const DataGraph& graph,
                           std::vector<Diagnostic>* diagnostics);
void RunRegexGraphChecksPass(const RegexPtr& expression,
                             const DataGraph& graph,
                             std::vector<Diagnostic>* diagnostics);

}  // namespace gqd

#endif  // GQD_ANALYSIS_GRAPH_CHECKS_H_
