#include "analysis/graph_checks.h"

#include <set>
#include <string>

namespace gqd {

namespace {

/// Collects the distinct letter names of an AST, generic over the families
/// (all three expose `kind` plus a letter kind, `letter`, and `children`).
template <typename Ptr, typename Kind>
void CollectLetters(const Ptr& node, Kind letter_kind,
                    std::set<std::string>* out) {
  if (node->kind == letter_kind) {
    out->insert(node->letter);
  }
  for (const Ptr& child : node->children) {
    CollectLetters(child, letter_kind, out);
  }
}

void ReportMissingLetters(const std::set<std::string>& letters,
                          const DataGraph& graph,
                          std::vector<Diagnostic>* diagnostics) {
  for (const std::string& letter : letters) {
    if (!graph.labels().Find(letter).has_value()) {
      diagnostics->push_back(Diagnostic{
          DiagnosticSeverity::kError, "GQD-GRF-001",
          "letter `" + letter +
              "` does not occur in the graph's alphabet; the atom matches "
              "no edge",
          letter});
    }
  }
}

}  // namespace

void RunRemGraphChecksPass(const RemPtr& expression, const DataGraph& graph,
                           std::vector<Diagnostic>* diagnostics) {
  std::set<std::string> letters;
  CollectLetters(expression, RemKind::kLetter, &letters);
  ReportMissingLetters(letters, graph, diagnostics);
  std::size_t k = RemNumRegisters(expression);
  std::size_t delta = graph.NumDataValues();
  if (k > delta) {
    diagnostics->push_back(Diagnostic{
        DiagnosticSeverity::kWarning, "GQD-GRF-002",
        "expression uses " + std::to_string(k) +
            " registers but the graph has only " + std::to_string(delta) +
            " distinct data values; by Lemma 23 at most " +
            std::to_string(delta) + " registers are useful here",
        ""});
  }
}

void RunReeGraphChecksPass(const ReePtr& expression, const DataGraph& graph,
                           std::vector<Diagnostic>* diagnostics) {
  std::set<std::string> letters;
  CollectLetters(expression, ReeKind::kLetter, &letters);
  ReportMissingLetters(letters, graph, diagnostics);
}

void RunRegexGraphChecksPass(const RegexPtr& expression,
                             const DataGraph& graph,
                             std::vector<Diagnostic>* diagnostics) {
  std::set<std::string> letters;
  CollectLetters(expression, RegexKind::kLetter, &letters);
  ReportMissingLetters(letters, graph, diagnostics);
}

}  // namespace gqd
