#include "analysis/graph_checks.h"

#include <map>
#include <set>
#include <string>

namespace gqd {

namespace {

/// Source anchor of a letter atom: REM nodes carry parser offsets, the
/// regex and REE families do not (yet).
std::size_t LetterOffset(const RemPtr& node) { return node->source_offset; }
template <typename Ptr>
std::size_t LetterOffset(const Ptr&) {
  return Diagnostic::kNoOffset;
}

/// Collects the distinct letter names of an AST (with the offset of each
/// name's first occurrence), generic over the families (all three expose
/// `kind` plus a letter kind, `letter`, and `children`).
template <typename Ptr, typename Kind>
void CollectLetters(const Ptr& node, Kind letter_kind,
                    std::map<std::string, std::size_t>* out) {
  if (node->kind == letter_kind) {
    out->emplace(node->letter, LetterOffset(node));
  }
  for (const Ptr& child : node->children) {
    CollectLetters(child, letter_kind, out);
  }
}

void ReportMissingLetters(const std::map<std::string, std::size_t>& letters,
                          const DataGraph& graph,
                          std::vector<Diagnostic>* diagnostics) {
  for (const auto& [letter, offset] : letters) {
    if (!graph.labels().Find(letter).has_value()) {
      diagnostics->push_back(Diagnostic{
          DiagnosticSeverity::kError, "GQD-GRF-001",
          "letter `" + letter +
              "` does not occur in the graph's alphabet; the atom matches "
              "no edge",
          letter, offset});
    }
  }
}

}  // namespace

void RunRemGraphChecksPass(const RemPtr& expression, const DataGraph& graph,
                           std::vector<Diagnostic>* diagnostics) {
  std::map<std::string, std::size_t> letters;
  CollectLetters(expression, RemKind::kLetter, &letters);
  ReportMissingLetters(letters, graph, diagnostics);
  std::size_t k = RemNumRegisters(expression);
  std::size_t delta = graph.NumDataValues();
  if (k > delta) {
    diagnostics->push_back(Diagnostic{
        DiagnosticSeverity::kWarning, "GQD-GRF-002",
        "expression uses " + std::to_string(k) +
            " registers but the graph has only " + std::to_string(delta) +
            " distinct data values; by Lemma 23 at most " +
            std::to_string(delta) + " registers are useful here",
        "", expression->source_offset});
  }
}

void RunReeGraphChecksPass(const ReePtr& expression, const DataGraph& graph,
                           std::vector<Diagnostic>* diagnostics) {
  std::map<std::string, std::size_t> letters;
  CollectLetters(expression, ReeKind::kLetter, &letters);
  ReportMissingLetters(letters, graph, diagnostics);
}

void RunRegexGraphChecksPass(const RegexPtr& expression,
                             const DataGraph& graph,
                             std::vector<Diagnostic>* diagnostics) {
  std::map<std::string, std::size_t> letters;
  CollectLetters(expression, RegexKind::kLetter, &letters);
  ReportMissingLetters(letters, graph, diagnostics);
}

}  // namespace gqd
