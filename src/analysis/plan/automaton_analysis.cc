#include "analysis/plan/automaton_analysis.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "analysis/condition_analysis.h"
#include "rem/condition.h"

namespace gqd {

namespace {

/// Pushes `state` onto `worklist` the first time it is seen.
void Visit(RaState state, std::vector<bool>* seen,
           std::vector<RaState>* worklist) {
  if (!(*seen)[state]) {
    (*seen)[state] = true;
    worklist->push_back(state);
  }
}

std::string StoreDetail(const RegisterAutomaton::StoreEdge& edge) {
  std::string detail = "store ";
  for (std::size_t i = 0; i < edge.registers.size(); i++) {
    if (i > 0) {
      detail += ",";
    }
    detail += "r" + std::to_string(edge.registers[i] + 1);
  }
  if (edge.registers.empty()) {
    detail += "(none)";
  }
  return detail;
}

}  // namespace

const char* EliminationKindName(EliminatedTransition::Kind kind) {
  switch (kind) {
    case EliminatedTransition::Kind::kDeadEndpoint:
      return "dead-endpoint";
    case EliminatedTransition::Kind::kUnsatisfiableCheck:
      return "unsatisfiable-check";
    case EliminatedTransition::Kind::kDuplicate:
      return "duplicate";
    case EliminatedTransition::Kind::kSubsumedCheck:
      return "subsumed-check";
  }
  return "unknown";
}

const char* EliminationEdgeName(EliminatedTransition::Edge edge) {
  switch (edge) {
    case EliminatedTransition::Edge::kStore:
      return "store";
    case EliminatedTransition::Edge::kCheck:
      return "check";
    case EliminatedTransition::Edge::kLetter:
      return "letter";
  }
  return "unknown";
}

std::size_t AutomatonAnalysis::EliminatedCount(
    EliminatedTransition::Kind kind) const {
  std::size_t count = 0;
  for (const EliminatedTransition& t : eliminated) {
    if (t.kind == kind) {
      count++;
    }
  }
  return count;
}

AutomatonAnalysis AnalyzeAutomaton(const RegisterAutomaton& automaton) {
  AutomatonAnalysis analysis;
  std::size_t n = automaton.num_states;
  analysis.num_states = n;
  analysis.reachable.assign(n, false);
  analysis.coaccessible.assign(n, false);
  analysis.live.assign(n, false);
  if (n == 0) {
    return analysis;
  }

  // Forward reachability from start, over every edge kind. Condition
  // satisfiability is deliberately ignored here: treating every Check as
  // passable over-approximates reachability, and pruning only what even
  // the over-approximation misses is always language-preserving.
  std::vector<RaState> worklist;
  Visit(automaton.start, &analysis.reachable, &worklist);
  while (!worklist.empty()) {
    RaState s = worklist.back();
    worklist.pop_back();
    for (const auto& e : automaton.store_edges[s]) {
      Visit(e.to, &analysis.reachable, &worklist);
    }
    for (const auto& e : automaton.check_edges[s]) {
      Visit(e.to, &analysis.reachable, &worklist);
    }
    for (const auto& e : automaton.letter_edges[s]) {
      Visit(e.to, &analysis.reachable, &worklist);
    }
  }

  // Reverse coaccessibility from accept.
  std::vector<std::vector<RaState>> reverse(n);
  for (std::size_t s = 0; s < n; s++) {
    RaState from = static_cast<RaState>(s);
    for (const auto& e : automaton.store_edges[s]) {
      reverse[e.to].push_back(from);
    }
    for (const auto& e : automaton.check_edges[s]) {
      reverse[e.to].push_back(from);
    }
    for (const auto& e : automaton.letter_edges[s]) {
      reverse[e.to].push_back(from);
    }
  }
  Visit(automaton.accept, &analysis.coaccessible, &worklist);
  while (!worklist.empty()) {
    RaState s = worklist.back();
    worklist.pop_back();
    for (RaState p : reverse[s]) {
      Visit(p, &analysis.coaccessible, &worklist);
    }
  }

  for (std::size_t s = 0; s < n; s++) {
    analysis.live[s] = analysis.reachable[s] && analysis.coaccessible[s];
    if (analysis.live[s]) {
      analysis.live_states++;
    }
  }

  analysis.keep_store.resize(n);
  analysis.keep_check.resize(n);
  analysis.keep_letter.resize(n);

  auto eliminate = [&](EliminatedTransition::Kind kind,
                       EliminatedTransition::Edge edge, RaState from,
                       RaState to, std::string detail) {
    analysis.eliminated.push_back(
        EliminatedTransition{kind, edge, from, to, std::move(detail)});
  };

  for (std::size_t s = 0; s < n; s++) {
    RaState from = static_cast<RaState>(s);
    bool from_live = analysis.live[s];
    analysis.keep_store[s].assign(automaton.store_edges[s].size(), true);
    analysis.keep_check[s].assign(automaton.check_edges[s].size(), true);
    analysis.keep_letter[s].assign(automaton.letter_edges[s].size(), true);
    analysis.total_transitions += automaton.store_edges[s].size() +
                                  automaton.check_edges[s].size() +
                                  automaton.letter_edges[s].size();

    // Dead endpoints first; the redundancy screens below only compare
    // edges that survived, so a duplicate of a dead edge is itself
    // reported as dead, not as a duplicate.
    for (std::size_t i = 0; i < automaton.store_edges[s].size(); i++) {
      const auto& e = automaton.store_edges[s][i];
      if (!from_live || !analysis.live[e.to]) {
        analysis.keep_store[s][i] = false;
        eliminate(EliminatedTransition::Kind::kDeadEndpoint,
                  EliminatedTransition::Edge::kStore, from, e.to,
                  StoreDetail(e));
      }
    }
    for (std::size_t i = 0; i < automaton.check_edges[s].size(); i++) {
      const auto& e = automaton.check_edges[s][i];
      if (!from_live || !analysis.live[e.to]) {
        analysis.keep_check[s][i] = false;
        eliminate(EliminatedTransition::Kind::kDeadEndpoint,
                  EliminatedTransition::Edge::kCheck, from, e.to,
                  "[" + ConditionToString(e.condition) + "]");
      }
    }
    for (std::size_t i = 0; i < automaton.letter_edges[s].size(); i++) {
      const auto& e = automaton.letter_edges[s][i];
      if (!from_live || !analysis.live[e.to]) {
        analysis.keep_letter[s][i] = false;
        eliminate(EliminatedTransition::Kind::kDeadEndpoint,
                  EliminatedTransition::Edge::kLetter, from, e.to,
                  "letter #" + std::to_string(e.label));
      }
    }

    // Unsatisfiable checks, decided exactly by the minterm compilation when
    // the condition mentions few enough registers for the 64-bit mask.
    std::vector<std::pair<bool, MintermMask>> masks(
        automaton.check_edges[s].size(), {false, 0});
    for (std::size_t i = 0; i < automaton.check_edges[s].size(); i++) {
      if (!analysis.keep_check[s][i]) {
        continue;
      }
      const auto& e = automaton.check_edges[s][i];
      std::size_t registers = ConditionNumRegisters(e.condition);
      if (registers > kMaxAnalyzableRegisters) {
        continue;
      }
      masks[i] = {true, ConditionToMinterms(e.condition, registers)};
      if (masks[i].second == 0) {
        analysis.keep_check[s][i] = false;
        eliminate(EliminatedTransition::Kind::kUnsatisfiableCheck,
                  EliminatedTransition::Edge::kCheck, from, e.to,
                  "[" + ConditionToString(e.condition) + "]");
      }
    }

    // Duplicates within each surviving edge family.
    {
      std::map<std::pair<std::uint32_t, RaState>, std::size_t> seen;
      for (std::size_t i = 0; i < automaton.letter_edges[s].size(); i++) {
        if (!analysis.keep_letter[s][i]) {
          continue;
        }
        const auto& e = automaton.letter_edges[s][i];
        if (!seen.emplace(std::make_pair(e.label, e.to), i).second) {
          analysis.keep_letter[s][i] = false;
          eliminate(EliminatedTransition::Kind::kDuplicate,
                    EliminatedTransition::Edge::kLetter, from, e.to,
                    "letter #" + std::to_string(e.label));
        }
      }
    }
    {
      std::map<std::pair<std::vector<std::size_t>, RaState>, std::size_t> seen;
      for (std::size_t i = 0; i < automaton.store_edges[s].size(); i++) {
        if (!analysis.keep_store[s][i]) {
          continue;
        }
        const auto& e = automaton.store_edges[s][i];
        std::vector<std::size_t> sorted = e.registers;
        std::sort(sorted.begin(), sorted.end());
        if (!seen.emplace(std::make_pair(std::move(sorted), e.to), i).second) {
          analysis.keep_store[s][i] = false;
          eliminate(EliminatedTransition::Kind::kDuplicate,
                    EliminatedTransition::Edge::kStore, from, e.to,
                    StoreDetail(e));
        }
      }
    }
    {
      // Checks: semantic duplicates (equal minterm sets) when decidable,
      // syntactic rendering otherwise.
      std::map<std::tuple<bool, std::uint64_t, std::string, RaState>,
               std::size_t>
          seen;
      for (std::size_t i = 0; i < automaton.check_edges[s].size(); i++) {
        if (!analysis.keep_check[s][i]) {
          continue;
        }
        const auto& e = automaton.check_edges[s][i];
        auto key = masks[i].first
                       ? std::make_tuple(true, masks[i].second, std::string(),
                                         e.to)
                       : std::make_tuple(false, std::uint64_t{0},
                                         ConditionToString(e.condition), e.to);
        if (!seen.emplace(std::move(key), i).second) {
          analysis.keep_check[s][i] = false;
          eliminate(EliminatedTransition::Kind::kDuplicate,
                    EliminatedTransition::Edge::kCheck, from, e.to,
                    "[" + ConditionToString(e.condition) + "]");
        }
      }
    }

    // Subsumption: a check whose minterm set is strictly contained in a
    // parallel check's (same endpoints) admits a strict subset of that
    // check's runs, so dropping the stronger one loses nothing.
    for (std::size_t i = 0; i < automaton.check_edges[s].size(); i++) {
      if (!analysis.keep_check[s][i] || !masks[i].first) {
        continue;
      }
      const auto& ei = automaton.check_edges[s][i];
      for (std::size_t j = 0; j < automaton.check_edges[s].size(); j++) {
        if (j == i || !analysis.keep_check[s][j] || !masks[j].first) {
          continue;
        }
        const auto& ej = automaton.check_edges[s][j];
        if (ej.to == ei.to && masks[i].second != masks[j].second &&
            (masks[i].second & masks[j].second) == masks[i].second) {
          analysis.keep_check[s][i] = false;
          eliminate(EliminatedTransition::Kind::kSubsumedCheck,
                    EliminatedTransition::Edge::kCheck, from, ei.to,
                    "[" + ConditionToString(ei.condition) + "] subsumed by [" +
                        ConditionToString(ej.condition) + "]");
          break;
        }
      }
    }
  }

  for (std::size_t s = 0; s < n; s++) {
    for (bool keep : analysis.keep_store[s]) {
      analysis.kept_transitions += keep ? 1 : 0;
    }
    for (bool keep : analysis.keep_check[s]) {
      analysis.kept_transitions += keep ? 1 : 0;
    }
    for (bool keep : analysis.keep_letter[s]) {
      analysis.kept_transitions += keep ? 1 : 0;
    }
  }
  return analysis;
}

RegisterAutomaton PruneAutomaton(const RegisterAutomaton& automaton,
                                 const AutomatonAnalysis& analysis) {
  std::size_t n = automaton.num_states;
  constexpr RaState kDropped = static_cast<RaState>(-1);
  std::vector<RaState> remap(n, kDropped);
  RaState next = 0;
  for (std::size_t s = 0; s < n; s++) {
    // Start and accept survive unconditionally so the pruned machine is
    // always well-formed (an empty-language query keeps its two anchors).
    if (analysis.live[s] || s == automaton.start || s == automaton.accept) {
      remap[s] = next++;
    }
  }

  RegisterAutomaton pruned;
  pruned.num_states = next;
  pruned.num_registers = automaton.num_registers;
  pruned.start = remap[automaton.start];
  pruned.accept = remap[automaton.accept];
  pruned.store_edges.resize(next);
  pruned.check_edges.resize(next);
  pruned.letter_edges.resize(next);
  for (std::size_t s = 0; s < n; s++) {
    if (remap[s] == kDropped) {
      continue;
    }
    for (std::size_t i = 0; i < automaton.store_edges[s].size(); i++) {
      const auto& e = automaton.store_edges[s][i];
      if (analysis.keep_store[s][i] && remap[e.to] != kDropped) {
        pruned.store_edges[remap[s]].push_back(
            RegisterAutomaton::StoreEdge{e.registers, remap[e.to]});
      }
    }
    for (std::size_t i = 0; i < automaton.check_edges[s].size(); i++) {
      const auto& e = automaton.check_edges[s][i];
      if (analysis.keep_check[s][i] && remap[e.to] != kDropped) {
        pruned.check_edges[remap[s]].push_back(
            RegisterAutomaton::CheckEdge{e.condition, remap[e.to]});
      }
    }
    for (std::size_t i = 0; i < automaton.letter_edges[s].size(); i++) {
      const auto& e = automaton.letter_edges[s][i];
      if (analysis.keep_letter[s][i] && remap[e.to] != kDropped) {
        pruned.letter_edges[remap[s]].push_back(
            RegisterAutomaton::LetterEdge{e.label, remap[e.to]});
      }
    }
  }
  return pruned;
}

void AppendPlanDiagnostics(const AutomatonAnalysis& analysis,
                           std::vector<Diagnostic>* diagnostics) {
  std::size_t dead =
      analysis.EliminatedCount(EliminatedTransition::Kind::kDeadEndpoint) +
      analysis.EliminatedCount(
          EliminatedTransition::Kind::kUnsatisfiableCheck);
  std::size_t dead_states = analysis.num_states - analysis.live_states;
  if (dead > 0 || dead_states > 0) {
    diagnostics->push_back(Diagnostic{
        DiagnosticSeverity::kWarning, "GQD-PLAN-001",
        "automaton has " + std::to_string(dead) +
            " transition(s) that can never lie on an accepting run (" +
            std::to_string(dead_states) +
            " unreachable or non-coaccessible state(s)); the plan pass "
            "eliminates them",
        ""});
  }
  std::size_t redundant =
      analysis.EliminatedCount(EliminatedTransition::Kind::kDuplicate) +
      analysis.EliminatedCount(EliminatedTransition::Kind::kSubsumedCheck);
  if (redundant > 0) {
    diagnostics->push_back(Diagnostic{
        DiagnosticSeverity::kNote, "GQD-PLAN-002",
        "automaton has " + std::to_string(redundant) +
            " redundant transition(s) (duplicate, or a check subsumed by a "
            "weaker parallel check); the plan pass eliminates them",
        ""});
  }
  if (dead > 0 || dead_states > 0 || redundant > 0) {
    diagnostics->push_back(Diagnostic{
        DiagnosticSeverity::kNote, "GQD-PLAN-003",
        "plan: automaton reduced from " +
            std::to_string(analysis.num_states) + " state(s) / " +
            std::to_string(analysis.total_transitions) +
            " transition(s) to " + std::to_string(analysis.live_states) +
            " live state(s) / " + std::to_string(analysis.kept_transitions) +
            " transition(s)",
        ""});
  }
}

}  // namespace gqd
