// The per-query compilation artifact of the plan pass.
//
// BuildRemQueryPlan runs once after parse: compile the REM to its register
// automaton, analyze reachability/liveness and transition redundancy
// (analysis/plan/automaton_analysis.h), prune, and record the findings as
// GQD-PLAN-* diagnostics. When a data graph is in play the caller
// additionally builds a KernelDispatchTable over the assignment graph and
// attaches its census, so the plan dump (`gqd compile --plan-out=FILE`)
// shows the chosen kernel class, operand shape, and cost estimate of every
// transition the checkers will execute.
//
// Plans are immutable after construction and safe to share (the serving
// runtime caches them next to the normalized query text, keyed by the same
// ResultCache fingerprinting).

#ifndef GQD_ANALYSIS_PLAN_QUERY_PLAN_H_
#define GQD_ANALYSIS_PLAN_QUERY_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/plan/automaton_analysis.h"
#include "analysis/plan/kernel_class.h"
#include "analysis/plan/kernel_dispatch.h"
#include "common/interner.h"
#include "rem/ast.h"
#include "rem/register_automaton.h"

namespace gqd {

/// One non-noop transition of the attached dispatch census.
struct QueryPlanKernelChoice {
  std::uint32_t store_mask = 0;
  std::uint32_t label = 0;
  std::uint32_t pattern = 0;
  TransitionKernelClass cls = TransitionKernelClass::kGeneric;
  std::uint32_t num_edges = 0;
  std::uint64_t cost = 0;
};

struct QueryPlan {
  std::string normalized;  ///< canonical-printed query text
  std::size_t num_registers = 0;

  // Automaton analysis summary (before = as compiled, after = pruned).
  std::size_t states_before = 0;
  std::size_t states_after = 0;
  std::size_t transitions_before = 0;
  std::size_t transitions_after = 0;
  RegisterAutomaton automaton;  ///< the pruned machine the eval BFS runs
  std::vector<EliminatedTransition> eliminated;
  std::vector<Diagnostic> diagnostics;  ///< GQD-PLAN-* findings

  // Dispatch census (AttachDispatchCensus; absent without a graph).
  bool has_dispatch = false;
  bool dispatch_enabled = false;
  std::size_t dispatch_states = 0;
  std::size_t dispatch_set_words = 0;
  std::size_t class_counts[kNumKernelClasses] = {};
  std::uint64_t total_cost = 0;
  std::vector<QueryPlanKernelChoice> kernels;  ///< non-noop, canonical order

  /// Human-readable dump; label names resolve via `labels` when given,
  /// otherwise as #id. Deterministic for golden tests.
  std::string ToText(const StringInterner* labels = nullptr) const;

  /// Machine-readable dump, deterministic field order.
  std::string ToJson(const StringInterner* labels = nullptr) const;
};

/// Runs the analysis stage on a parsed REM. `labels`/`intern_new_labels`
/// are forwarded to CompileRem — pass the graph's interner with
/// intern_new_labels == false to plan against a concrete alphabet.
QueryPlan BuildRemQueryPlan(const RemPtr& expression, StringInterner* labels,
                            bool intern_new_labels = true);

/// Copies `table`'s census and per-transition choices into `plan`.
void AttachDispatchCensus(const KernelDispatchTable& table, QueryPlan* plan);

}  // namespace gqd

#endif  // GQD_ANALYSIS_PLAN_QUERY_PLAN_H_
