#include "analysis/plan/query_plan.h"

#include <utility>

#include "analysis/plan/plan_metrics.h"
#include "common/json_util.h"
#include "obs/trace.h"

namespace gqd {

namespace {

std::string LabelName(const StringInterner* labels, std::uint32_t label) {
  if (labels != nullptr && label < labels->size()) {
    return labels->NameOf(label);
  }
  return "#" + std::to_string(label);
}

std::string StoreMaskToString(std::uint32_t mask) {
  if (mask == 0) {
    return "-";
  }
  std::string out;
  for (std::size_t r = 0; mask >> r != 0; r++) {
    if (mask & (1u << r)) {
      if (!out.empty()) {
        out += ",";
      }
      out += "r" + std::to_string(r + 1);
    }
  }
  return out;
}

}  // namespace

QueryPlan BuildRemQueryPlan(const RemPtr& expression, StringInterner* labels,
                            bool intern_new_labels) {
  GQD_TRACE_SPAN(span, "plan.analyze");
  QueryPlan plan;
  plan.normalized = RemToString(expression);
  plan.num_registers = RemNumRegisters(expression);
  RegisterAutomaton automaton =
      CompileRem(expression, labels, intern_new_labels);
  AutomatonAnalysis analysis = AnalyzeAutomaton(automaton);
  plan.states_before = analysis.num_states;
  plan.transitions_before = analysis.total_transitions;
  plan.automaton = PruneAutomaton(automaton, analysis);
  plan.states_after = plan.automaton.num_states;
  plan.transitions_after = analysis.kept_transitions;
  AppendPlanDiagnostics(analysis, &plan.diagnostics);
  plan.eliminated = std::move(analysis.eliminated);

  std::size_t eliminated_by_kind[4] = {};
  for (const EliminatedTransition& t : plan.eliminated) {
    eliminated_by_kind[static_cast<std::size_t>(t.kind)]++;
  }
  RecordPlanBuild(nullptr, eliminated_by_kind);
  GQD_TRACE_SPAN_ATTR(span, "states_before", plan.states_before);
  GQD_TRACE_SPAN_ATTR(span, "states_after", plan.states_after);
  GQD_TRACE_SPAN_ATTR(span, "eliminated", plan.eliminated.size());
  return plan;
}

void AttachDispatchCensus(const KernelDispatchTable& table, QueryPlan* plan) {
  plan->has_dispatch = true;
  plan->dispatch_enabled = table.enabled();
  plan->dispatch_states = table.num_states();
  plan->dispatch_set_words = table.set_words();
  plan->total_cost = table.total_cost();
  plan->kernels.clear();
  for (std::size_t c = 0; c < kNumKernelClasses; c++) {
    plan->class_counts[c] = table.enabled() ? table.class_counts()[c] : 0;
  }
  if (!table.enabled()) {
    return;
  }
  // Same (mask, label, pattern) order as the checker's block loop, so the
  // dump reads in execution order.
  for (std::uint32_t mask = 0; mask < table.num_store_masks(); mask++) {
    for (std::uint32_t label = 0; label < table.num_labels(); label++) {
      for (std::uint32_t pattern = 0; pattern < table.num_patterns();
           pattern++) {
        const TransitionPlan& t =
            table.PlanFor(mask, static_cast<LabelId>(label), pattern);
        if (t.cls == TransitionKernelClass::kNoOp) {
          continue;
        }
        plan->kernels.push_back(QueryPlanKernelChoice{
            mask, label, pattern, t.cls, t.num_edges, t.cost});
      }
    }
  }
}

std::string QueryPlan::ToText(const StringInterner* labels) const {
  std::string out = "query plan\n";
  out += "  normalized: " + normalized + "\n";
  out += "  registers: " + std::to_string(num_registers) + "\n";
  out += "  automaton: " + std::to_string(states_before) + " state(s), " +
         std::to_string(transitions_before) + " transition(s) -> " +
         std::to_string(states_after) + " state(s), " +
         std::to_string(transitions_after) + " transition(s)\n";
  if (!eliminated.empty()) {
    out += "  eliminated transitions:\n";
    for (const EliminatedTransition& t : eliminated) {
      out += std::string("    - ") + EliminationKindName(t.kind) + " " +
             EliminationEdgeName(t.edge) + " " + std::to_string(t.from) +
             " -> " + std::to_string(t.to) + ": " + t.detail + "\n";
    }
  }
  if (!diagnostics.empty()) {
    out += "  diagnostics:\n";
    for (const Diagnostic& d : diagnostics) {
      out += std::string("    ") + DiagnosticSeverityToString(d.severity) +
             " " + d.code + ": " + d.message + "\n";
    }
  }
  if (has_dispatch) {
    out += "  dispatch: " + std::to_string(dispatch_states) + " state(s), " +
           std::to_string(dispatch_set_words) + " word(s)/set, " +
           (dispatch_enabled ? "enabled" : "disabled") + "\n";
    if (dispatch_enabled) {
      out += "    class census:";
      for (std::size_t c = 0; c < kNumKernelClasses; c++) {
        out += std::string(" ") +
               TransitionKernelClassName(
                   static_cast<TransitionKernelClass>(c)) +
               "=" + std::to_string(class_counts[c]);
      }
      out += "\n";
      out += "    total cost: " + std::to_string(total_cost) +
             " word(s)/application\n";
      if (!kernels.empty()) {
        out += "    kernels:\n";
        for (const QueryPlanKernelChoice& k : kernels) {
          out += "      - store=" + StoreMaskToString(k.store_mask) +
                 " label=" + LabelName(labels, k.label) +
                 " pattern=" + std::to_string(k.pattern) + ": " +
                 TransitionKernelClassName(k.cls) +
                 " edges=" + std::to_string(k.num_edges) +
                 " cost=" + std::to_string(k.cost) + "\n";
        }
      }
    }
  }
  return out;
}

std::string QueryPlan::ToJson(const StringInterner* labels) const {
  std::string out = "{";
  out += "\"normalized\":" + JsonQuote(normalized);
  out += ",\"registers\":" + std::to_string(num_registers);
  out += ",\"automaton\":{\"states_before\":" + std::to_string(states_before) +
         ",\"states_after\":" + std::to_string(states_after) +
         ",\"transitions_before\":" + std::to_string(transitions_before) +
         ",\"transitions_after\":" + std::to_string(transitions_after) + "}";
  out += ",\"eliminated\":[";
  for (std::size_t i = 0; i < eliminated.size(); i++) {
    const EliminatedTransition& t = eliminated[i];
    if (i > 0) {
      out += ",";
    }
    out += std::string("{\"kind\":\"") + EliminationKindName(t.kind) +
           "\",\"edge\":\"" + EliminationEdgeName(t.edge) +
           "\",\"from\":" + std::to_string(t.from) +
           ",\"to\":" + std::to_string(t.to) +
           ",\"detail\":" + JsonQuote(t.detail) + "}";
  }
  out += "]";
  out += ",\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); i++) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) {
      out += ",";
    }
    out += std::string("{\"severity\":\"") +
           DiagnosticSeverityToString(d.severity) + "\",\"code\":" +
           JsonQuote(d.code) + ",\"message\":" + JsonQuote(d.message) + "}";
  }
  out += "]";
  if (has_dispatch) {
    out += ",\"dispatch\":{\"enabled\":";
    out += dispatch_enabled ? "true" : "false";
    out += ",\"states\":" + std::to_string(dispatch_states) +
           ",\"set_words\":" + std::to_string(dispatch_set_words) +
           ",\"total_cost\":" + std::to_string(total_cost);
    out += ",\"class_counts\":{";
    for (std::size_t c = 0; c < kNumKernelClasses; c++) {
      if (c > 0) {
        out += ",";
      }
      out += std::string("\"") +
             TransitionKernelClassName(static_cast<TransitionKernelClass>(c)) +
             "\":" + std::to_string(class_counts[c]);
    }
    out += "}";
    out += ",\"kernels\":[";
    for (std::size_t i = 0; i < kernels.size(); i++) {
      const QueryPlanKernelChoice& k = kernels[i];
      if (i > 0) {
        out += ",";
      }
      out += "{\"store_mask\":" + std::to_string(k.store_mask) +
             ",\"label\":" + JsonQuote(LabelName(labels, k.label)) +
             ",\"pattern\":" + std::to_string(k.pattern) +
             ",\"class\":\"" + TransitionKernelClassName(k.cls) +
             "\",\"edges\":" + std::to_string(k.num_edges) +
             ",\"cost\":" + std::to_string(k.cost) + "}";
    }
    out += "]}";
  } else {
    out += ",\"dispatch\":null";
  }
  out += "}";
  return out;
}

}  // namespace gqd
