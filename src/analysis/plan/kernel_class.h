// The kernel vocabulary of the query-plan static analyzer.
//
// The plan pass classifies every (store mask, label, pattern) transition of
// an assignment graph into one of a handful of shapes, each with its own
// specialized inner loop in the definability checkers. Classification is
// purely structural — it never changes *which* bits a transition produces,
// only how they are computed — so planned and generic execution are
// bit-identical (tests/test_definability_diff pins this down).

#ifndef GQD_ANALYSIS_PLAN_KERNEL_CLASS_H_
#define GQD_ANALYSIS_PLAN_KERNEL_CLASS_H_

#include <cstddef>
#include <cstdint>

namespace gqd {

/// Shape of one transition's successor structure.
enum class TransitionKernelClass : std::uint8_t {
  /// No edges at all: the transition can never fire. Skipped outright.
  kNoOp,
  /// Every source has exactly one successor, itself. The source bitmask
  /// doubles as the transition row: part |= Q & mask, word-parallel.
  kIdentity,
  /// Every source has at most one successor: one u32 target per state.
  kSingleBit,
  /// Few edges relative to the dense-row footprint: CSR edge lists,
  /// cost proportional to the edge count.
  kSparse,
  /// Dense successor rows: word-parallel OR of pre-packed kernel rows,
  /// clipped to the target word span.
  kDense,
  /// REE-only: =/≠ restriction over an all-singleton value partition
  /// degenerates to a diagonal mask (row_u ∧ {u} / row_u ∖ {u}).
  kDiagonal,
  /// Classification abstained (no dispatch table); the generic
  /// word-parallel or per-successor path runs instead.
  kGeneric,
};

inline constexpr std::size_t kNumKernelClasses = 7;

/// Stable lower-case name, used in plan dumps and metric labels.
inline const char* TransitionKernelClassName(TransitionKernelClass cls) {
  switch (cls) {
    case TransitionKernelClass::kNoOp:
      return "noop";
    case TransitionKernelClass::kIdentity:
      return "identity";
    case TransitionKernelClass::kSingleBit:
      return "single_bit";
    case TransitionKernelClass::kSparse:
      return "sparse";
    case TransitionKernelClass::kDense:
      return "dense";
    case TransitionKernelClass::kDiagonal:
      return "diagonal";
    case TransitionKernelClass::kGeneric:
      return "generic";
  }
  return "unknown";
}

}  // namespace gqd

#endif  // GQD_ANALYSIS_PLAN_KERNEL_CLASS_H_
