#include "analysis/plan/kernel_dispatch.h"

#include <algorithm>
#include <utility>

#include "analysis/plan/plan_metrics.h"
#include "obs/trace.h"

namespace gqd {

KernelDispatchTable KernelDispatchTable::Build(const AssignmentGraph& ag) {
  GQD_TRACE_SPAN(span, "plan.build_dispatch");
  KernelDispatchTable table;
  table.num_states_ = ag.num_states();
  table.num_labels_ = ag.num_labels();
  table.num_patterns_ = ag.num_patterns();
  table.set_words_ = (ag.num_states() + 63) / 64;
  if (table.num_states_ == 0 || table.num_labels_ == 0) {
    return table;
  }
  table.plans_.assign(
      ag.num_store_masks() * table.num_labels_ * table.num_patterns_,
      TransitionPlan{});

  // Per-pattern edge buffers for the (mask, label) being scanned; sources
  // appear in increasing state order because the state loop is ordered.
  std::vector<std::vector<std::pair<AgState, AgState>>> edges(
      table.num_patterns_);

  for (std::uint32_t mask = 0; mask < ag.num_store_masks(); mask++) {
    for (LabelId label = 0; label < table.num_labels_; label++) {
      for (auto& e : edges) {
        e.clear();
      }
      for (std::size_t s = 0; s < table.num_states_; s++) {
        AgState state = static_cast<AgState>(s);
        for (const auto& successor : ag.SuccessorsOf(mask, label, state)) {
          edges[successor.pattern].emplace_back(state, successor.state);
        }
      }
      for (std::uint32_t p = 0; p < table.num_patterns_; p++) {
        TransitionPlan& plan =
            table.plans_[(mask * table.num_labels_ + label) *
                             table.num_patterns_ +
                         p];
        const auto& list = edges[p];
        if (list.empty()) {
          plan.cls = TransitionKernelClass::kNoOp;
          continue;
        }
        plan.num_edges = static_cast<std::uint32_t>(list.size());
        bool single = true;
        bool self = true;
        std::uint32_t src_min = ~0u, src_max = 0, tgt_min = ~0u, tgt_max = 0;
        std::uint32_t sources = 0;
        for (std::size_t i = 0; i < list.size(); i++) {
          AgState s = list[i].first, t = list[i].second;
          if (i == 0 || list[i - 1].first != s) {
            sources++;
          } else {
            single = false;
          }
          self = self && (t == s);
          src_min = std::min(src_min, s >> 6);
          src_max = std::max(src_max, s >> 6);
          tgt_min = std::min(tgt_min, t >> 6);
          tgt_max = std::max(tgt_max, t >> 6);
        }
        plan.num_sources = sources;
        plan.src_begin_word = src_min;
        plan.src_end_word = src_max + 1;
        plan.tgt_begin_word = tgt_min;
        plan.tgt_end_word = tgt_max + 1;

        // The source bitmask pool backs every class: the scan visits only
        // bits of Q ∧ mask, so no-edge states cost nothing.
        plan.mask_offset = table.source_masks_.size();
        table.source_masks_.resize(plan.mask_offset + table.set_words_, 0);
        std::uint64_t* src_mask = table.source_masks_.data() +
                                  plan.mask_offset;
        for (const auto& [s, t] : list) {
          src_mask[s >> 6] |= std::uint64_t{1} << (s & 63);
        }

        std::uint64_t tgt_span = plan.tgt_end_word - plan.tgt_begin_word;
        if (single && self) {
          plan.cls = TransitionKernelClass::kIdentity;
          plan.cost = plan.src_end_word - plan.src_begin_word;
        } else if (single) {
          plan.cls = TransitionKernelClass::kSingleBit;
          plan.cost = plan.num_sources;
          plan.pool_offset = table.single_targets_.size();
          table.single_targets_.resize(plan.pool_offset + table.num_states_,
                                       kNoTarget);
          std::uint32_t* targets =
              table.single_targets_.data() + plan.pool_offset;
          for (const auto& [s, t] : list) {
            targets[s] = t;
          }
        } else if (!ag.has_kernel() ||
                   plan.num_edges < plan.num_sources * tgt_span) {
          plan.cls = TransitionKernelClass::kSparse;
          plan.cost = plan.num_edges;
          plan.pool_offset = table.csr_offsets_.size();
          table.csr_offsets_.resize(plan.pool_offset + table.num_states_ + 1,
                                    0);
          std::uint32_t* offsets =
              table.csr_offsets_.data() + plan.pool_offset;
          std::size_t at = 0;
          for (std::size_t s = 0; s <= table.num_states_; s++) {
            offsets[s] = static_cast<std::uint32_t>(table.csr_targets_.size());
            while (at < list.size() &&
                   list[at].first == static_cast<AgState>(s)) {
              table.csr_targets_.push_back(list[at].second);
              at++;
            }
          }
        } else {
          plan.cls = TransitionKernelClass::kDense;
          plan.cost = static_cast<std::uint64_t>(plan.num_sources) * tgt_span;
        }
      }
    }
  }

  table.pool_bytes_ = table.source_masks_.size() * sizeof(std::uint64_t) +
                      (table.single_targets_.size() +
                       table.csr_offsets_.size() + table.csr_targets_.size()) *
                          sizeof(std::uint32_t) +
                      table.plans_.size() * sizeof(TransitionPlan);
  if (table.pool_bytes_ > kDispatchMemoryBudgetBytes) {
    // Too big to be worth holding next to the assignment graph's own
    // kernel; the generic engines handle this size class fine.
    table.source_masks_.clear();
    table.single_targets_.clear();
    table.csr_offsets_.clear();
    table.csr_targets_.clear();
    table.plans_.clear();
    table.enabled_ = false;
    GQD_TRACE_SPAN_ATTR(span, "disabled_pool_bytes", table.pool_bytes_);
    return table;
  }

  for (const TransitionPlan& plan : table.plans_) {
    table.class_counts_[static_cast<std::size_t>(plan.cls)]++;
    table.total_cost_ += plan.cost;
  }
  table.enabled_ = true;
  RecordPlanBuild(table.class_counts_, nullptr);
  GQD_TRACE_SPAN_ATTR(span, "transitions", table.plans_.size());
  GQD_TRACE_SPAN_ATTR(span, "pool_bytes", table.pool_bytes_);
  GQD_TRACE_SPAN_ATTR(span, "total_cost", table.total_cost_);
  return table;
}

}  // namespace gqd
