#include "analysis/plan/plan_metrics.h"

#include <atomic>

#include "analysis/plan/automaton_analysis.h"
#include "obs/metrics.h"

namespace gqd {

namespace {

std::atomic<std::uint64_t> g_builds{0};
std::atomic<std::uint64_t> g_eliminated[4] = {};
std::atomic<std::uint64_t> g_kernel_transitions[kNumKernelClasses] = {};
std::atomic<std::uint64_t> g_kernel_hits[kNumKernelClasses] = {};

}  // namespace

void RecordPlanBuild(const std::size_t* class_counts,
                     const std::size_t* eliminated_by_kind) {
  g_builds.fetch_add(1, std::memory_order_relaxed);
  if (class_counts != nullptr) {
    for (std::size_t c = 0; c < kNumKernelClasses; c++) {
      g_kernel_transitions[c].fetch_add(class_counts[c],
                                        std::memory_order_relaxed);
    }
  }
  if (eliminated_by_kind != nullptr) {
    for (std::size_t k = 0; k < 4; k++) {
      g_eliminated[k].fetch_add(eliminated_by_kind[k],
                                std::memory_order_relaxed);
    }
  }
}

void RecordPlanKernelHits(const std::uint64_t* hits) {
  for (std::size_t c = 0; c < kNumKernelClasses; c++) {
    if (hits[c] != 0) {
      g_kernel_hits[c].fetch_add(hits[c], std::memory_order_relaxed);
    }
  }
}

PlanCounterSnapshot GetPlanCounterSnapshot() {
  PlanCounterSnapshot snapshot;
  snapshot.builds = g_builds.load(std::memory_order_relaxed);
  for (std::size_t k = 0; k < 4; k++) {
    snapshot.transitions_eliminated[k] =
        g_eliminated[k].load(std::memory_order_relaxed);
  }
  for (std::size_t c = 0; c < kNumKernelClasses; c++) {
    snapshot.kernel_transitions[c] =
        g_kernel_transitions[c].load(std::memory_order_relaxed);
    snapshot.kernel_hits[c] = g_kernel_hits[c].load(std::memory_order_relaxed);
  }
  return snapshot;
}

void UpdatePlanMetrics(MetricsRegistry* registry) {
  PlanCounterSnapshot snapshot = GetPlanCounterSnapshot();
  registry->GetCounter("gqd_plan_builds_total")->Set(snapshot.builds);
  for (std::size_t k = 0; k < 4; k++) {
    registry
        ->GetCounter("gqd_plan_transitions_eliminated_total",
                     {{"kind", EliminationKindName(
                                   static_cast<EliminatedTransition::Kind>(
                                       k))}})
        ->Set(snapshot.transitions_eliminated[k]);
  }
  for (std::size_t c = 0; c < kNumKernelClasses; c++) {
    const char* name =
        TransitionKernelClassName(static_cast<TransitionKernelClass>(c));
    registry
        ->GetCounter("gqd_plan_kernel_transitions_total", {{"class", name}})
        ->Set(snapshot.kernel_transitions[c]);
    registry->GetCounter("gqd_plan_kernel_hits_total", {{"class", name}})
        ->Set(snapshot.kernel_hits[c]);
  }
}

}  // namespace gqd
