// Specialized-kernel dispatch table over an assignment graph.
//
// For every (store mask, letter, equality pattern) transition of a built
// AssignmentGraph, classification (analysis/plan/kernel_class.h) picks the
// cheapest inner loop that reproduces the generic word-parallel path
// bit-for-bit, together with the pre-extracted operands that loop needs:
//
//   kNoOp      — nothing; the transition has no edges anywhere.
//   kIdentity  — every source maps to exactly itself: the source bitmask
//                *is* the transition image, part |= Q & mask.
//   kSingleBit — at most one successor per source: a u32 target per state.
//   kSparse    — CSR edge lists; cost tracks the edge count, not |Q|².
//   kDense     — the assignment graph's packed kernel rows, OR'd over the
//                clipped target word span.
//
// Every non-noop transition also records the word spans its sources and
// targets occupy, so both the scanning loops and the subset-DFS save/OR/
// restore in the k-REM checker touch only the words that can change.
//
// The table is a pure acceleration structure: PlanFor never changes which
// successor bits a transition produces, only how they are computed, which
// is what keeps the planned engine bit-identical to the reference engine
// (tests/test_definability_diff).

#ifndef GQD_ANALYSIS_PLAN_KERNEL_DISPATCH_H_
#define GQD_ANALYSIS_PLAN_KERNEL_DISPATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/plan/kernel_class.h"
#include "definability/assignment_graph.h"

namespace gqd {

/// Classification + operands of one (store mask, letter, pattern)
/// transition. Word spans are half-open [begin, end) over the packed
/// state-set words (⌈|Q|/64⌉ per set).
struct TransitionPlan {
  TransitionKernelClass cls = TransitionKernelClass::kNoOp;
  std::uint32_t num_sources = 0;  ///< states with at least one edge
  std::uint32_t num_edges = 0;
  std::uint32_t src_begin_word = 0;
  std::uint32_t src_end_word = 0;
  std::uint32_t tgt_begin_word = 0;
  std::uint32_t tgt_end_word = 0;
  /// Estimated words touched per application (the plan dump's cost model):
  /// identity → src span, single-bit → sources, sparse → edges,
  /// dense → sources × target span.
  std::uint64_t cost = 0;
  std::size_t mask_offset = 0;  ///< into the source-mask pool
  std::size_t pool_offset = 0;  ///< class-specific pool start (see accessors)
};

class KernelDispatchTable {
 public:
  KernelDispatchTable() = default;

  /// Classifies every transition of `ag`. The resulting table is disabled
  /// (enabled() == false, empty pools) when the graph has no states or the
  /// operand pools would exceed kDispatchMemoryBudgetBytes — callers then
  /// fall back to the generic engines.
  static KernelDispatchTable Build(const AssignmentGraph& ag);

  bool enabled() const { return enabled_; }
  std::size_t num_states() const { return num_states_; }
  std::size_t set_words() const { return set_words_; }
  std::size_t num_patterns() const { return num_patterns_; }
  std::size_t num_labels() const { return num_labels_; }
  std::size_t num_store_masks() const {
    return num_labels_ == 0 || num_patterns_ == 0
               ? 0
               : plans_.size() / (num_labels_ * num_patterns_);
  }

  const TransitionPlan& PlanFor(std::uint32_t store_mask, LabelId label,
                                std::uint32_t pattern) const {
    return plans_[(store_mask * num_labels_ + label) * num_patterns_ +
                  pattern];
  }

  /// Source bitmask of a non-noop transition: bit s ⟺ state s has at least
  /// one edge under the transition. set_words() words. For kIdentity this
  /// doubles as the transition image.
  const std::uint64_t* SourceMask(const TransitionPlan& plan) const {
    return source_masks_.data() + plan.mask_offset;
  }

  /// kSingleBit: target state per source, num_states() entries indexed by
  /// state id; kNoTarget for states without an edge (never visited by the
  /// masked scan, kept only so indexing is direct).
  const std::uint32_t* SingleTargets(const TransitionPlan& plan) const {
    return single_targets_.data() + plan.pool_offset;
  }
  static constexpr std::uint32_t kNoTarget = 0xffffffffu;

  /// kSparse: num_states()+1 absolute offsets into CsrTargets(); state s's
  /// targets are [offsets[s], offsets[s+1]).
  const std::uint32_t* CsrOffsets(const TransitionPlan& plan) const {
    return csr_offsets_.data() + plan.pool_offset;
  }
  const std::uint32_t* CsrTargets() const { return csr_targets_.data(); }

  /// Census over every transition (including noops), by class.
  const std::size_t* class_counts() const { return class_counts_; }
  std::uint64_t total_cost() const { return total_cost_; }
  std::size_t pool_bytes() const { return pool_bytes_; }

  /// Operand-pool ceiling; a table that would exceed it stays disabled.
  static constexpr std::size_t kDispatchMemoryBudgetBytes =
      std::size_t{64} << 20;

 private:
  bool enabled_ = false;
  std::size_t num_states_ = 0;
  std::size_t num_labels_ = 0;
  std::size_t num_patterns_ = 0;
  std::size_t set_words_ = 0;
  std::vector<TransitionPlan> plans_;
  std::vector<std::uint64_t> source_masks_;
  std::vector<std::uint32_t> single_targets_;
  std::vector<std::uint32_t> csr_offsets_;
  std::vector<std::uint32_t> csr_targets_;
  std::size_t class_counts_[kNumKernelClasses] = {};
  std::uint64_t total_cost_ = 0;
  std::size_t pool_bytes_ = 0;
};

}  // namespace gqd

#endif  // GQD_ANALYSIS_PLAN_KERNEL_DISPATCH_H_
