// Process-wide counters for the query-plan subsystem.
//
// The plan pass and the planned definability engines run deep inside
// checkers that know nothing about a MetricsRegistry, so — like the
// failpoint counters (common/failpoint.h) — they accumulate into global
// atomics here and the serving layer mirrors them into its registry at
// exposition time via UpdatePlanMetrics (runtime/stats.cc calls it right
// next to UpdateFailpointMetrics).

#ifndef GQD_ANALYSIS_PLAN_PLAN_METRICS_H_
#define GQD_ANALYSIS_PLAN_PLAN_METRICS_H_

#include <cstddef>
#include <cstdint>

#include "analysis/plan/kernel_class.h"

namespace gqd {

class MetricsRegistry;

/// Snapshot of the global plan counters (also what the tests assert on).
struct PlanCounterSnapshot {
  std::uint64_t builds = 0;
  std::uint64_t transitions_eliminated[4] = {0, 0, 0, 0};  ///< by Kind
  std::uint64_t kernel_transitions[kNumKernelClasses] = {0};
  std::uint64_t kernel_hits[kNumKernelClasses] = {0};
};

/// Records one plan build: the per-class census of its dispatch table
/// (pass nullptr for a build without a dispatch table) and the number of
/// transitions eliminated per EliminatedTransition::Kind (index by the
/// enum's underlying value; pass nullptr when nothing was analyzed).
void RecordPlanBuild(const std::size_t* class_counts,
                     const std::size_t* eliminated_by_kind);

/// Accumulates specialized-kernel inner-loop executions, one slot per
/// TransitionKernelClass. The engines batch counts per search and flush
/// once, so the atomics are off the hot path.
void RecordPlanKernelHits(const std::uint64_t* hits);

/// Current counter values.
PlanCounterSnapshot GetPlanCounterSnapshot();

/// Mirrors the global counters into `registry` as
///   gqd_plan_builds_total
///   gqd_plan_transitions_eliminated_total{kind=...}
///   gqd_plan_kernel_transitions_total{class=...}
///   gqd_plan_kernel_hits_total{class=...}
void UpdatePlanMetrics(MetricsRegistry* registry);

}  // namespace gqd

#endif  // GQD_ANALYSIS_PLAN_PLAN_METRICS_H_
