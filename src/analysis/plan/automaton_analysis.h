// Reachability/liveness analysis over compiled register automata.
//
// The first stage of the query plan (analysis/plan/query_plan.h): a
// forward-reachability BFS from the start state and a reverse
// coaccessibility BFS from the accept state decide which states can lie on
// an accepting run at all, and a per-edge screen eliminates transitions
// that provably never matter:
//   * dead endpoint   — source or target state is not live;
//   * unsatisfiable   — a Check edge whose condition's minterm set is empty
//                       (decided exactly for conditions over ≤ 6 registers);
//   * duplicate       — a second edge identical to an earlier one;
//   * subsumed        — a Check edge between the same states as another
//                       whose minterm set contains it (the stronger test
//                       adds no runs the weaker one lacks).
// All four are language-preserving: reachability ignores condition
// satisfiability (an over-approximation, so pruning is always safe), and
// the edge rules only remove runs that another retained edge reproduces or
// that cannot complete.
//
// The findings surface through the lint "plan" pass as GQD-PLAN-001/-002/
// -003 and drive PruneAutomaton, which rebuilds the automaton over the
// live states only — both the eval BFS and the plan dump run on the pruned
// machine.

#ifndef GQD_ANALYSIS_PLAN_AUTOMATON_ANALYSIS_H_
#define GQD_ANALYSIS_PLAN_AUTOMATON_ANALYSIS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "rem/register_automaton.h"

namespace gqd {

/// One transition the analysis proved removable.
struct EliminatedTransition {
  enum class Kind : std::uint8_t {
    kDeadEndpoint,        ///< source or target not reachable ∧ coaccessible
    kUnsatisfiableCheck,  ///< Check condition has an empty minterm set
    kDuplicate,           ///< identical to an earlier edge of the same state
    kSubsumedCheck,       ///< Check implied by a weaker parallel Check
  };
  enum class Edge : std::uint8_t { kStore, kCheck, kLetter };

  Kind kind;
  Edge edge;
  RaState from;
  RaState to;
  std::string detail;  ///< rendered edge label, e.g. the condition text
};

/// Stable lower-kebab names for plan dumps.
const char* EliminationKindName(EliminatedTransition::Kind kind);
const char* EliminationEdgeName(EliminatedTransition::Edge edge);

/// The analysis result: per-state liveness, per-edge keep masks (parallel
/// to the automaton's edge lists), and the eliminated-transition log.
struct AutomatonAnalysis {
  std::size_t num_states = 0;
  std::size_t live_states = 0;
  std::size_t total_transitions = 0;
  std::size_t kept_transitions = 0;
  std::vector<bool> reachable;
  std::vector<bool> coaccessible;
  std::vector<bool> live;  ///< reachable ∧ coaccessible
  std::vector<std::vector<bool>> keep_store;
  std::vector<std::vector<bool>> keep_check;
  std::vector<std::vector<bool>> keep_letter;
  std::vector<EliminatedTransition> eliminated;

  std::size_t EliminatedCount(EliminatedTransition::Kind kind) const;
};

/// Runs the analysis; pure function of the automaton.
AutomatonAnalysis AnalyzeAutomaton(const RegisterAutomaton& automaton);

/// Rebuilds the automaton over live states (plus start/accept, which are
/// always retained so the machine stays well-formed even when the language
/// is empty), dropping every eliminated edge. Language-preserving.
RegisterAutomaton PruneAutomaton(const RegisterAutomaton& automaton,
                                 const AutomatonAnalysis& analysis);

/// Appends the GQD-PLAN-001/-002/-003 findings for `analysis` (nothing is
/// appended for an automaton the analysis could not shrink).
void AppendPlanDiagnostics(const AutomatonAnalysis& analysis,
                           std::vector<Diagnostic>* diagnostics);

}  // namespace gqd

#endif  // GQD_ANALYSIS_PLAN_AUTOMATON_ANALYSIS_H_
