// Expression and automaton hygiene (GQD-AUT-001/-002/-003/-004).
//
// Emptiness (GQD-AUT-003, error): a bottom-up "definitely empty language"
// computation per family. Structural sources of emptiness: an e[c] test
// with an unsatisfiable condition (REM), the (e=)≠ / (e≠)= collapses and
// (ε)≠ (REE, using first-value/last-value invariants), and — when a target
// graph is supplied — letters outside its alphabet Σ, which match nothing
// (the compiler's dead-fragment semantics, rem/register_automaton.h). The
// topmost empty subexpression is reported, not every node under it.
//
// Redundant ε/star nesting and duplicate union branches (GQD-AUT-004,
// note): e⁺⁺, (e*)⁺ (star is ε|e⁺ after desugaring), ε⁺, ε units inside
// concatenations, [⊤] tests, (e=)=, (e≠)≠, and union branches that print
// identically.
//
// Automaton hygiene (GQD-AUT-001/-002, warnings): unreachable and dead
// (non-coaccessible) states of a compiled register automaton. On an
// automaton compiled against a graph's alphabet, dead letter fragments
// (labels outside Σ) surface here as unreachable/dead state clusters —
// the automaton-level manifestation of GQD-GRF-001.

#ifndef GQD_ANALYSIS_HYGIENE_H_
#define GQD_ANALYSIS_HYGIENE_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "graph/data_graph.h"
#include "regex/ast.h"
#include "rem/ast.h"
#include "rem/register_automaton.h"
#include "ree/ast.h"

namespace gqd {

/// Definitely-empty-language predicates ("definitely": false negatives are
/// possible, reported emptiness is exact). `graph` may be null; when given,
/// letters outside its alphabet are empty.
bool RemDefinitelyEmpty(const RemPtr& expression, const DataGraph* graph);
bool ReeDefinitelyEmpty(const ReePtr& expression, const DataGraph* graph);
bool RegexDefinitelyEmpty(const RegexPtr& expression, const DataGraph* graph);

/// Emptiness passes: GQD-AUT-003 on each topmost empty subexpression.
void RunRemEmptinessPass(const RemPtr& expression, const DataGraph* graph,
                         std::vector<Diagnostic>* diagnostics);
void RunReeEmptinessPass(const ReePtr& expression, const DataGraph* graph,
                         std::vector<Diagnostic>* diagnostics);
void RunRegexEmptinessPass(const RegexPtr& expression, const DataGraph* graph,
                           std::vector<Diagnostic>* diagnostics);

/// Redundancy passes: GQD-AUT-004 notes.
void RunRemRedundancyPass(const RemPtr& expression,
                          std::vector<Diagnostic>* diagnostics);
void RunReeRedundancyPass(const ReePtr& expression,
                          std::vector<Diagnostic>* diagnostics);
void RunRegexRedundancyPass(const RegexPtr& expression,
                            std::vector<Diagnostic>* diagnostics);

/// Automaton hygiene: GQD-AUT-001 (unreachable states) and GQD-AUT-002
/// (dead states) over the transition graph, ignoring condition
/// satisfiability.
void RunAutomatonHygienePass(const RegisterAutomaton& automaton,
                             std::vector<Diagnostic>* diagnostics);

}  // namespace gqd

#endif  // GQD_ANALYSIS_HYGIENE_H_
