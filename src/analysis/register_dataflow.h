// Register dataflow analysis for REM queries (GQD-REG-001/-002/-003).
//
// Definition 5 semantics: ↓r̄.e stores the *first* data value of the matched
// subpath into r̄; e[c] tests the *last* value against the assignment.  A
// register starts empty (⊥), and Definition 3 fixes the comparisons on ⊥:
// r_i= is false (⊥ equals nothing) and r_i≠ is true (⊥ differs from
// everything).  Hence a condition atom reading a register at a point where
// *no* path through the expression allows a prior store is semantically
// constant — constantly false for r_i= (GQD-REG-001, error: the enclosing
// test can only shrink the language for no reason the author intended) and
// constantly true for r_i≠ (GQD-REG-002, warning: the atom is vacuous).
//
// The property is computed twice, by construction independently:
//   * AstVacuousReads — a forward may-store dataflow over the REM AST
//     (fixpoint iteration through e⁺ bodies);
//   * AutomatonVacuousReads — a worklist may-store dataflow over the
//     compiled register automaton's transition graph.
// The two implementations cross-check each other in the test suite (the
// same checker/oracle pattern as DESIGN.md §3).  For the cross-check the
// automaton must be compiled with intern_new_labels == true, otherwise
// unknown letters become dead fragments invisible to the automaton side.

#ifndef GQD_ANALYSIS_REGISTER_DATAFLOW_H_
#define GQD_ANALYSIS_REGISTER_DATAFLOW_H_

#include <cstddef>
#include <vector>

#include "analysis/diagnostic.h"
#include "rem/ast.h"
#include "rem/register_automaton.h"

namespace gqd {

/// A register read that no prior store can feed, as (register, atom kind).
struct VacuousRead {
  std::size_t register_index = 0;
  bool is_equality = false;  ///< true: r_i= (constantly false); false: r_i≠.

  bool operator==(const VacuousRead& other) const = default;
  bool operator<(const VacuousRead& other) const {
    return register_index != other.register_index
               ? register_index < other.register_index
               : is_equality < other.is_equality;
  }
};

/// A vacuous read anchored to the e[c] node containing the atom.
struct VacuousReadSite {
  RemPtr test;  ///< The kCondition node whose condition reads the register.
  VacuousRead read;
};

/// AST-level forward may-store analysis. Registers beyond index 63 are not
/// analyzed (the bitmask implementation caps k at 64, far beyond the k <= 6
/// the rest of the library supports).
std::vector<VacuousReadSite> AstVacuousReads(const RemPtr& expression);

/// The same property over the compiled automaton's transition graph.
/// Findings are deduplicated (register, kind) pairs in sorted order.
std::vector<VacuousRead> AutomatonVacuousReads(const RegisterAutomaton& ra);

/// Projects sites to deduplicated sorted (register, kind) pairs, the shape
/// AutomatonVacuousReads returns — the cross-check comparison form.
std::vector<VacuousRead> DeduplicateReads(
    const std::vector<VacuousReadSite>& sites);

/// Registers stored by some bind but read by no condition, in sorted order.
std::vector<std::size_t> DeadStores(const RemPtr& expression);

/// The pass: emits GQD-REG-001 (error), GQD-REG-002 and GQD-REG-003
/// (warnings) for `expression`.
void RunRegisterDataflowPass(const RemPtr& expression,
                             std::vector<Diagnostic>* diagnostics);

}  // namespace gqd

#endif  // GQD_ANALYSIS_REGISTER_DATAFLOW_H_
