// Diagnostics for the query static-analysis subsystem.
//
// A Diagnostic is one finding of a lint pass (analysis/pass_manager.h):
// a severity, a stable machine-readable code like "GQD-REG-001", a
// human-readable message, and — when the finding anchors to a specific
// subexpression — that subexpression pretty-printed in concrete syntax.
//
// Codes are stable across releases and documented in docs/analysis.md with
// their paper grounding; AllDiagnosticCodes() is the in-code registry the
// docs and tests cross-check against.

#ifndef GQD_ANALYSIS_DIAGNOSTIC_H_
#define GQD_ANALYSIS_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/json_util.h"  // IWYU pragma: export (JsonEscape moved here)

namespace gqd {

enum class DiagnosticSeverity {
  kError,    ///< The query provably contains vacuous/dead structure.
  kWarning,  ///< Suspicious structure (semantically constant, or useless).
  kNote,     ///< Style-level redundancy; rewriting would simplify the query.
};

/// "error", "warning" or "note".
const char* DiagnosticSeverityToString(DiagnosticSeverity severity);

/// One lint finding.
struct Diagnostic {
  DiagnosticSeverity severity = DiagnosticSeverity::kWarning;
  std::string code;           ///< Stable code, e.g. "GQD-REG-001".
  std::string message;        ///< Human-readable explanation.
  std::string subexpression;  ///< Offending subexpression, "" when n/a.

  bool operator==(const Diagnostic& other) const = default;
};

/// True iff any diagnostic has error severity.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

/// Number of diagnostics at exactly `severity`.
std::size_t CountSeverity(const std::vector<Diagnostic>& diagnostics,
                          DiagnosticSeverity severity);

/// Compiler-style text rendering:
///   error GQD-REG-001: register r1 is read ... [newline]
///       in: $r1. a [r1=]
std::string DiagnosticsToText(const std::vector<Diagnostic>& diagnostics);

/// JSON rendering:
///   {"diagnostics":[{"severity":"error","code":...,"message":...,
///    "subexpression":...}],"errors":N,"warnings":N,"notes":N}
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

/// Registry entry for one stable diagnostic code.
struct DiagnosticCodeInfo {
  const char* code;
  DiagnosticSeverity severity;
  const char* summary;
};

/// All diagnostic codes the passes can emit, in code order.
const std::vector<DiagnosticCodeInfo>& AllDiagnosticCodes();

}  // namespace gqd

#endif  // GQD_ANALYSIS_DIAGNOSTIC_H_
