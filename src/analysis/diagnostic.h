// Diagnostics for the query static-analysis subsystem.
//
// A Diagnostic is one finding of a lint pass (analysis/pass_manager.h):
// a severity, a stable machine-readable code like "GQD-REG-001", a
// human-readable message, and — when the finding anchors to a specific
// subexpression — that subexpression pretty-printed in concrete syntax,
// plus the byte offset of the subexpression in the query source when the
// parser provided one (ResolveDiagnosticLocations turns offsets into
// 1-based line/column anchors, so every finding is clickable).
//
// Codes are stable across releases and documented in docs/analysis.md with
// their paper grounding; AllDiagnosticCodes() is the in-code registry the
// docs and tests cross-check against.

#ifndef GQD_ANALYSIS_DIAGNOSTIC_H_
#define GQD_ANALYSIS_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/json_util.h"  // IWYU pragma: export (JsonEscape moved here)

namespace gqd {

enum class DiagnosticSeverity {
  kError,    ///< The query provably contains vacuous/dead structure.
  kWarning,  ///< Suspicious structure (semantically constant, or useless).
  kNote,     ///< Style-level redundancy; rewriting would simplify the query.
};

/// "error", "warning" or "note". Inline so layers below gqd_analysis (the
/// plan pass renders its own findings) need no link-time dependency.
inline const char* DiagnosticSeverityToString(DiagnosticSeverity severity) {
  switch (severity) {
    case DiagnosticSeverity::kError:
      return "error";
    case DiagnosticSeverity::kWarning:
      return "warning";
    case DiagnosticSeverity::kNote:
      return "note";
  }
  return "unknown";
}

/// One lint finding.
struct Diagnostic {
  /// Sentinel for "no source anchor" (automaton-level findings, synthesized
  /// expressions that were never concrete text).
  static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

  DiagnosticSeverity severity = DiagnosticSeverity::kWarning;
  std::string code;           ///< Stable code, e.g. "GQD-REG-001".
  std::string message;        ///< Human-readable explanation.
  std::string subexpression;  ///< Offending subexpression, "" when n/a.

  /// Byte offset of the anchored subexpression in the query source, or
  /// kNoOffset. Filled by passes from the parser's node offsets.
  std::size_t offset = kNoOffset;
  /// 1-based source anchor, 0 until ResolveDiagnosticLocations runs (and
  /// forever for unanchored findings).
  std::size_t line = 0;
  std::size_t column = 0;

  /// Location-insensitive equality: two findings are the same finding
  /// regardless of where (or whether) they anchor.
  bool operator==(const Diagnostic& other) const {
    return severity == other.severity && code == other.code &&
           message == other.message && subexpression == other.subexpression;
  }
};

/// True iff any diagnostic has error severity.
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

/// Number of diagnostics at exactly `severity`.
std::size_t CountSeverity(const std::vector<Diagnostic>& diagnostics,
                          DiagnosticSeverity severity);

/// Converts byte offsets into 1-based line/column anchors against the
/// query source the diagnostics were produced from. Findings without an
/// offset (or with one past the source) are left unanchored.
void ResolveDiagnosticLocations(const std::string& source,
                                std::vector<Diagnostic>* diagnostics);

/// Compiler-style text rendering:
///   error GQD-REG-001: register r1 is read ... [newline]
///       at 1:5 in: $r1. a [r1=]
/// (the "at L:C" anchor appears only once resolved).
std::string DiagnosticsToText(const std::vector<Diagnostic>& diagnostics);

/// JSON rendering:
///   {"diagnostics":[{"severity":"error","code":...,"message":...,
///    "subexpression":...,"line":N,"column":N}],"errors":N,...}
/// (line/column appear only on resolved findings).
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

/// Registry entry for one stable diagnostic code.
struct DiagnosticCodeInfo {
  const char* code;
  DiagnosticSeverity severity;
  const char* summary;
};

/// All diagnostic codes the passes can emit, in code order.
const std::vector<DiagnosticCodeInfo>& AllDiagnosticCodes();

}  // namespace gqd

#endif  // GQD_ANALYSIS_DIAGNOSTIC_H_
