// Condition analysis for C_k conditions (GQD-COND-001/-002/-003).
//
// A condition over k registers denotes a set of minterms (rem/condition.h):
// equality patterns b ∈ {0,1}^k with b_i = "τ_i equals the current value".
// Compiling a condition to its minterm mask decides satisfiability exactly:
//   * empty mask      → the condition (and hence the enclosing e[c] test) is
//                       unsatisfiable — GQD-COND-001, error;
//   * a disjunct with empty mask, or a conjunct with full mask, contributes
//     nothing — GQD-COND-002, warning (dead branch);
//   * full mask on a condition not literally ⊤ — GQD-COND-003, note
//     (tautology written non-trivially).
//
// Conditions mentioning more than kMaxAnalyzableRegisters (6) registers are
// skipped — the minterm machinery itself caps k at 6 (MintermMask is 64-bit).

#ifndef GQD_ANALYSIS_CONDITION_ANALYSIS_H_
#define GQD_ANALYSIS_CONDITION_ANALYSIS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "rem/ast.h"
#include "rem/condition.h"

namespace gqd {

/// The widest condition (registers mentioned) the minterm analysis covers.
inline constexpr std::size_t kMaxAnalyzableRegisters = 6;

/// Analyzes one condition; `context` is the pretty-printed enclosing test
/// (used as the diagnostics' subexpression anchor) and `source_offset` the
/// test's position in the query text (kNoOffset when synthesized). No-op
/// when the condition mentions more than kMaxAnalyzableRegisters registers.
void AnalyzeCondition(const ConditionPtr& condition,
                      const std::string& context,
                      std::vector<Diagnostic>* diagnostics,
                      std::size_t source_offset = Diagnostic::kNoOffset);

/// The pass: analyzes the condition of every e[c] node in `expression`.
void RunConditionAnalysisPass(const RemPtr& expression,
                              std::vector<Diagnostic>* diagnostics);

}  // namespace gqd

#endif  // GQD_ANALYSIS_CONDITION_ANALYSIS_H_
