#include "analysis/hygiene.h"

#include <set>
#include <string>

#include "analysis/condition_analysis.h"
#include "rem/condition.h"

namespace gqd {

namespace {

bool LetterMissing(const std::string& letter, const DataGraph* graph) {
  return graph != nullptr && !graph->labels().Find(letter).has_value();
}

bool ConditionUnsatisfiable(const ConditionPtr& condition) {
  std::size_t k = ConditionNumRegisters(condition);
  if (k > kMaxAnalyzableRegisters) {
    return false;  // too wide to decide; assume satisfiable
  }
  return ConditionToMinterms(condition, k) == 0;
}

// --- REE first/last-value invariants ---------------------------------------
//
// Data-path concatenation shares the boundary value (w·d·w'), so a
// concatenation of subpaths each having first = last is itself first = last;
// no such closure holds for first ≠ last. The predicates are vacuously true
// on empty languages, which keeps the mutual recursion monotone.

bool ReeEmpty(const ReePtr& node, const DataGraph* graph);

/// Every data path of L(e) has first value = last value.
bool ReeAlwaysEq(const ReePtr& node, const DataGraph* graph) {
  switch (node->kind) {
    case ReeKind::kEpsilon:
      return true;
    case ReeKind::kLetter:
      return LetterMissing(node->letter, graph);  // vacuous when empty
    case ReeKind::kUnion:
    case ReeKind::kConcat: {
      for (const ReePtr& child : node->children) {
        if (!ReeAlwaysEq(child, graph)) {
          return false;
        }
      }
      return true;
    }
    case ReeKind::kPlus:
      return ReeAlwaysEq(node->children[0], graph);
    case ReeKind::kEq:
      return true;
    case ReeKind::kNeq:
      return ReeEmpty(node, graph);
  }
  return false;
}

/// Every data path of L(e) has first value ≠ last value.
bool ReeAlwaysNeq(const ReePtr& node, const DataGraph* graph) {
  switch (node->kind) {
    case ReeKind::kEpsilon:
      return false;  // the one-value path has first = last
    case ReeKind::kLetter:
      return LetterMissing(node->letter, graph);  // vacuous when empty
    case ReeKind::kUnion: {
      for (const ReePtr& child : node->children) {
        if (!ReeAlwaysNeq(child, graph)) {
          return false;
        }
      }
      return true;
    }
    case ReeKind::kConcat:
    case ReeKind::kPlus:
      // Inequality does not compose across shared boundaries; only vacuous.
      return ReeEmpty(node, graph);
    case ReeKind::kEq:
      return ReeEmpty(node, graph);
    case ReeKind::kNeq:
      return true;
  }
  return false;
}

bool ReeEmpty(const ReePtr& node, const DataGraph* graph) {
  switch (node->kind) {
    case ReeKind::kEpsilon:
      return false;
    case ReeKind::kLetter:
      return LetterMissing(node->letter, graph);
    case ReeKind::kUnion: {
      for (const ReePtr& child : node->children) {
        if (!ReeEmpty(child, graph)) {
          return false;
        }
      }
      return true;
    }
    case ReeKind::kConcat: {
      for (const ReePtr& child : node->children) {
        if (ReeEmpty(child, graph)) {
          return true;
        }
      }
      return false;
    }
    case ReeKind::kPlus:
      return ReeEmpty(node->children[0], graph);
    case ReeKind::kEq:
      return ReeEmpty(node->children[0], graph) ||
             ReeAlwaysNeq(node->children[0], graph);
    case ReeKind::kNeq:
      return ReeEmpty(node->children[0], graph) ||
             ReeAlwaysEq(node->children[0], graph);
  }
  return false;
}

bool RemEmpty(const RemPtr& node, const DataGraph* graph) {
  switch (node->kind) {
    case RemKind::kEpsilon:
      return false;
    case RemKind::kLetter:
      return LetterMissing(node->letter, graph);
    case RemKind::kUnion: {
      for (const RemPtr& child : node->children) {
        if (!RemEmpty(child, graph)) {
          return false;
        }
      }
      return true;
    }
    case RemKind::kConcat: {
      for (const RemPtr& child : node->children) {
        if (RemEmpty(child, graph)) {
          return true;
        }
      }
      return false;
    }
    case RemKind::kPlus:
    case RemKind::kBind:
      return RemEmpty(node->children[0], graph);
    case RemKind::kCondition:
      return RemEmpty(node->children[0], graph) ||
             ConditionUnsatisfiable(node->condition);
  }
  return false;
}

bool RegexEmpty(const RegexPtr& node, const DataGraph* graph) {
  switch (node->kind) {
    case RegexKind::kEpsilon:
      return false;
    case RegexKind::kLetter:
      return LetterMissing(node->letter, graph);
    case RegexKind::kUnion: {
      for (const RegexPtr& child : node->children) {
        if (!RegexEmpty(child, graph)) {
          return false;
        }
      }
      return true;
    }
    case RegexKind::kConcat: {
      for (const RegexPtr& child : node->children) {
        if (RegexEmpty(child, graph)) {
          return true;
        }
      }
      return false;
    }
    case RegexKind::kStar:
      return false;  // always contains ε
    case RegexKind::kPlus:
      return RegexEmpty(node->children[0], graph);
  }
  return false;
}

/// Source anchor of a node: REM nodes carry parser offsets, the regex and
/// REE families do not (yet) — their findings stay unanchored.
std::size_t NodeOffset(const RemPtr& node) { return node->source_offset; }
template <typename Ptr>
std::size_t NodeOffset(const Ptr&) {
  return Diagnostic::kNoOffset;
}

void EmptyDiagnostic(const std::string& printed,
                     std::vector<Diagnostic>* diagnostics,
                     std::size_t offset = Diagnostic::kNoOffset) {
  diagnostics->push_back(Diagnostic{
      DiagnosticSeverity::kError, "GQD-AUT-003",
      "subexpression has a provably empty language; it matches no data path",
      printed, offset});
}

/// Reports the topmost empty subexpressions of a tree, generic over the
/// three AST families via the per-family emptiness predicate.
template <typename Ptr, typename EmptyFn, typename PrintFn>
void ReportTopmostEmpty(const Ptr& node, const EmptyFn& empty,
                        const PrintFn& print,
                        std::vector<Diagnostic>* diagnostics) {
  if (empty(node)) {
    EmptyDiagnostic(print(node), diagnostics, NodeOffset(node));
    return;
  }
  for (const Ptr& child : node->children) {
    ReportTopmostEmpty(child, empty, print, diagnostics);
  }
}

void Redundancy(const std::string& what, const std::string& printed,
                std::vector<Diagnostic>* diagnostics,
                std::size_t offset = Diagnostic::kNoOffset) {
  diagnostics->push_back(Diagnostic{DiagnosticSeverity::kNote, "GQD-AUT-004",
                                    what, printed, offset});
}

/// A desugared star: ε | e⁺ (rem::Star / ree::Star emit exactly this shape).
template <typename Node, typename Kind>
bool IsStarShape(const std::shared_ptr<const Node>& node, Kind epsilon,
                 Kind union_kind, Kind plus) {
  if (node->kind != union_kind || node->children.size() != 2) {
    return false;
  }
  const auto& a = node->children[0];
  const auto& b = node->children[1];
  return (a->kind == epsilon && b->kind == plus) ||
         (b->kind == epsilon && a->kind == plus);
}

template <typename Ptr, typename PrintFn>
void ReportDuplicateUnionBranches(const Ptr& node, const PrintFn& print,
                                  std::vector<Diagnostic>* diagnostics) {
  std::set<std::string> seen;
  for (const Ptr& child : node->children) {
    std::string printed = print(child);
    if (!seen.insert(printed).second) {
      Redundancy("duplicate union branch `" + printed + "`", print(node),
                 diagnostics, NodeOffset(node));
    }
  }
}

void RemRedundancy(const RemPtr& node, std::vector<Diagnostic>* diagnostics) {
  auto star_shape = [](const RemPtr& n) {
    return IsStarShape(n, RemKind::kEpsilon, RemKind::kUnion, RemKind::kPlus);
  };
  switch (node->kind) {
    case RemKind::kPlus: {
      const RemPtr& body = node->children[0];
      if (body->kind == RemKind::kPlus) {
        Redundancy("nested e++ is equivalent to e+", RemToString(node),
                   diagnostics, node->source_offset);
      } else if (star_shape(body)) {
        Redundancy("(e*)+ is equivalent to e*", RemToString(node),
                   diagnostics, node->source_offset);
      } else if (body->kind == RemKind::kEpsilon) {
        Redundancy("eps+ is equivalent to eps", RemToString(node),
                   diagnostics, node->source_offset);
      }
      break;
    }
    case RemKind::kConcat: {
      for (const RemPtr& child : node->children) {
        if (child->kind == RemKind::kEpsilon) {
          Redundancy("eps unit inside a concatenation can be dropped",
                     RemToString(node), diagnostics, node->source_offset);
          break;
        }
      }
      break;
    }
    case RemKind::kUnion:
      ReportDuplicateUnionBranches(node, RemToString, diagnostics);
      break;
    case RemKind::kCondition:
      if (node->condition != nullptr &&
          node->condition->kind == ConditionKind::kTrue) {
        Redundancy("[T] test is a no-op", RemToString(node), diagnostics,
                   node->source_offset);
      }
      break;
    case RemKind::kBind:
      if (node->registers.empty()) {
        Redundancy("bind with no registers is a no-op", RemToString(node),
                   diagnostics, node->source_offset);
      }
      break;
    default:
      break;
  }
  for (const RemPtr& child : node->children) {
    RemRedundancy(child, diagnostics);
  }
}

void ReeRedundancy(const ReePtr& node, std::vector<Diagnostic>* diagnostics) {
  auto star_shape = [](const ReePtr& n) {
    return IsStarShape(n, ReeKind::kEpsilon, ReeKind::kUnion, ReeKind::kPlus);
  };
  switch (node->kind) {
    case ReeKind::kPlus: {
      const ReePtr& body = node->children[0];
      if (body->kind == ReeKind::kPlus) {
        Redundancy("nested e++ is equivalent to e+", ReeToString(node),
                   diagnostics);
      } else if (star_shape(body)) {
        Redundancy("(e*)+ is equivalent to e*", ReeToString(node),
                   diagnostics);
      } else if (body->kind == ReeKind::kEpsilon) {
        Redundancy("eps+ is equivalent to eps", ReeToString(node),
                   diagnostics);
      }
      break;
    }
    case ReeKind::kConcat: {
      for (const ReePtr& child : node->children) {
        if (child->kind == ReeKind::kEpsilon) {
          Redundancy("eps unit inside a concatenation can be dropped",
                     ReeToString(node), diagnostics);
          break;
        }
      }
      break;
    }
    case ReeKind::kUnion:
      ReportDuplicateUnionBranches(node, ReeToString, diagnostics);
      break;
    case ReeKind::kEq:
      if (node->children[0]->kind == ReeKind::kEq) {
        Redundancy("(e=)= is equivalent to e=", ReeToString(node),
                   diagnostics);
      }
      break;
    case ReeKind::kNeq:
      if (node->children[0]->kind == ReeKind::kNeq) {
        Redundancy("(e!=)!= is equivalent to e!=", ReeToString(node),
                   diagnostics);
      }
      break;
    default:
      break;
  }
  for (const ReePtr& child : node->children) {
    ReeRedundancy(child, diagnostics);
  }
}

void RegexRedundancy(const RegexPtr& node,
                     std::vector<Diagnostic>* diagnostics) {
  switch (node->kind) {
    case RegexKind::kStar:
    case RegexKind::kPlus: {
      const RegexPtr& body = node->children[0];
      bool outer_star = node->kind == RegexKind::kStar;
      if (body->kind == RegexKind::kStar || body->kind == RegexKind::kPlus) {
        bool inner_star = body->kind == RegexKind::kStar;
        if (outer_star || inner_star) {
          Redundancy("nested repetition collapses to a single star",
                     RegexToString(node), diagnostics);
        } else {
          Redundancy("nested e++ is equivalent to e+", RegexToString(node),
                     diagnostics);
        }
      } else if (body->kind == RegexKind::kEpsilon) {
        Redundancy("repetition of eps is equivalent to eps",
                   RegexToString(node), diagnostics);
      }
      break;
    }
    case RegexKind::kConcat: {
      for (const RegexPtr& child : node->children) {
        if (child->kind == RegexKind::kEpsilon) {
          Redundancy("eps unit inside a concatenation can be dropped",
                     RegexToString(node), diagnostics);
          break;
        }
      }
      break;
    }
    case RegexKind::kUnion:
      ReportDuplicateUnionBranches(node, RegexToString, diagnostics);
      break;
    default:
      break;
  }
  for (const RegexPtr& child : node->children) {
    RegexRedundancy(child, diagnostics);
  }
}

/// Forward reachability over every transition kind, ignoring condition
/// satisfiability. `forward == false` walks edges backwards from `from`.
std::vector<bool> Reach(const RegisterAutomaton& ra, RaState from,
                        bool forward) {
  std::vector<std::vector<RaState>> adjacency(ra.num_states);
  for (RaState s = 0; s < ra.num_states; s++) {
    auto add = [&](RaState to) {
      if (forward) {
        adjacency[s].push_back(to);
      } else {
        adjacency[to].push_back(s);
      }
    };
    for (const auto& e : ra.store_edges[s]) {
      add(e.to);
    }
    for (const auto& e : ra.check_edges[s]) {
      add(e.to);
    }
    for (const auto& e : ra.letter_edges[s]) {
      add(e.to);
    }
  }
  std::vector<bool> seen(ra.num_states, false);
  std::vector<RaState> stack = {from};
  seen[from] = true;
  while (!stack.empty()) {
    RaState s = stack.back();
    stack.pop_back();
    for (RaState t : adjacency[s]) {
      if (!seen[t]) {
        seen[t] = true;
        stack.push_back(t);
      }
    }
  }
  return seen;
}

std::string StateList(const std::vector<RaState>& states) {
  std::string out;
  for (std::size_t i = 0; i < states.size(); i++) {
    if (i > 0) {
      out += ", ";
    }
    out += std::to_string(states[i]);
  }
  return out;
}

}  // namespace

bool RemDefinitelyEmpty(const RemPtr& expression, const DataGraph* graph) {
  return RemEmpty(expression, graph);
}

bool ReeDefinitelyEmpty(const ReePtr& expression, const DataGraph* graph) {
  return ReeEmpty(expression, graph);
}

bool RegexDefinitelyEmpty(const RegexPtr& expression, const DataGraph* graph) {
  return RegexEmpty(expression, graph);
}

void RunRemEmptinessPass(const RemPtr& expression, const DataGraph* graph,
                         std::vector<Diagnostic>* diagnostics) {
  ReportTopmostEmpty(
      expression, [&](const RemPtr& n) { return RemEmpty(n, graph); },
      [](const RemPtr& n) { return RemToString(n); }, diagnostics);
}

void RunReeEmptinessPass(const ReePtr& expression, const DataGraph* graph,
                         std::vector<Diagnostic>* diagnostics) {
  ReportTopmostEmpty(
      expression, [&](const ReePtr& n) { return ReeEmpty(n, graph); },
      [](const ReePtr& n) { return ReeToString(n); }, diagnostics);
}

void RunRegexEmptinessPass(const RegexPtr& expression, const DataGraph* graph,
                           std::vector<Diagnostic>* diagnostics) {
  ReportTopmostEmpty(
      expression, [&](const RegexPtr& n) { return RegexEmpty(n, graph); },
      [](const RegexPtr& n) { return RegexToString(n); }, diagnostics);
}

void RunRemRedundancyPass(const RemPtr& expression,
                          std::vector<Diagnostic>* diagnostics) {
  RemRedundancy(expression, diagnostics);
}

void RunReeRedundancyPass(const ReePtr& expression,
                          std::vector<Diagnostic>* diagnostics) {
  ReeRedundancy(expression, diagnostics);
}

void RunRegexRedundancyPass(const RegexPtr& expression,
                            std::vector<Diagnostic>* diagnostics) {
  RegexRedundancy(expression, diagnostics);
}

void RunAutomatonHygienePass(const RegisterAutomaton& automaton,
                             std::vector<Diagnostic>* diagnostics) {
  if (automaton.num_states == 0) {
    return;
  }
  std::vector<bool> reachable = Reach(automaton, automaton.start, true);
  std::vector<bool> coreachable = Reach(automaton, automaton.accept, false);
  std::vector<RaState> unreachable;
  std::vector<RaState> dead;
  for (RaState s = 0; s < automaton.num_states; s++) {
    if (!reachable[s]) {
      unreachable.push_back(s);
    } else if (!coreachable[s]) {
      dead.push_back(s);
    }
  }
  if (!unreachable.empty()) {
    diagnostics->push_back(Diagnostic{
        DiagnosticSeverity::kWarning, "GQD-AUT-001",
        std::to_string(unreachable.size()) +
            " unreachable automaton state(s): {" + StateList(unreachable) +
            "}; typically a letter outside the target alphabet",
        ""});
  }
  if (!dead.empty()) {
    diagnostics->push_back(Diagnostic{
        DiagnosticSeverity::kWarning, "GQD-AUT-002",
        std::to_string(dead.size()) + " dead automaton state(s): {" +
            StateList(dead) + "}; no run through them can reach acceptance",
        ""});
  }
}

}  // namespace gqd
