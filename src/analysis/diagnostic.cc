#include "analysis/diagnostic.h"

#include <sstream>

#include "common/json_util.h"

namespace gqd {

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagnosticSeverity::kError) {
      return true;
    }
  }
  return false;
}

std::size_t CountSeverity(const std::vector<Diagnostic>& diagnostics,
                          DiagnosticSeverity severity) {
  std::size_t count = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) {
      count++;
    }
  }
  return count;
}

void ResolveDiagnosticLocations(const std::string& source,
                                std::vector<Diagnostic>* diagnostics) {
  for (Diagnostic& d : *diagnostics) {
    if (d.offset == Diagnostic::kNoOffset || d.offset > source.size()) {
      continue;
    }
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < d.offset; i++) {
      if (source[i] == '\n') {
        line++;
        column = 1;
      } else {
        column++;
      }
    }
    d.line = line;
    d.column = column;
  }
}

std::string DiagnosticsToText(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  for (const Diagnostic& d : diagnostics) {
    out << DiagnosticSeverityToString(d.severity) << " " << d.code << ": "
        << d.message << "\n";
    if (!d.subexpression.empty() || d.line > 0) {
      out << "    ";
      if (d.line > 0) {
        out << "at " << d.line << ":" << d.column;
        out << (d.subexpression.empty() ? "\n" : " ");
      }
      if (!d.subexpression.empty()) {
        out << "in: " << d.subexpression << "\n";
      }
    }
  }
  return out.str();
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::ostringstream out;
  out << "{\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); i++) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) {
      out << ",";
    }
    out << "{\"severity\":\"" << DiagnosticSeverityToString(d.severity)
        << "\",\"code\":\"" << JsonEscape(d.code) << "\",\"message\":\""
        << JsonEscape(d.message) << "\",\"subexpression\":\""
        << JsonEscape(d.subexpression) << "\"";
    if (d.line > 0) {
      out << ",\"line\":" << d.line << ",\"column\":" << d.column;
    }
    out << "}";
  }
  out << "],\"errors\":" << CountSeverity(diagnostics,
                                          DiagnosticSeverity::kError)
      << ",\"warnings\":"
      << CountSeverity(diagnostics, DiagnosticSeverity::kWarning)
      << ",\"notes\":" << CountSeverity(diagnostics, DiagnosticSeverity::kNote)
      << "}";
  return out.str();
}

const std::vector<DiagnosticCodeInfo>& AllDiagnosticCodes() {
  static const std::vector<DiagnosticCodeInfo> kCodes = {
      {"GQD-PARSE-001", DiagnosticSeverity::kError,
       "expression failed to parse"},
      {"GQD-REG-001", DiagnosticSeverity::kError,
       "register equality test before any possible store (constantly false)"},
      {"GQD-REG-002", DiagnosticSeverity::kWarning,
       "register inequality test before any possible store (constantly "
       "true)"},
      {"GQD-REG-003", DiagnosticSeverity::kWarning,
       "register stored but never read by any condition"},
      {"GQD-COND-001", DiagnosticSeverity::kError,
       "unsatisfiable condition (empty minterm set)"},
      {"GQD-COND-002", DiagnosticSeverity::kWarning,
       "dead branch inside a condition (unsatisfiable disjunct or "
       "tautological conjunct)"},
      {"GQD-COND-003", DiagnosticSeverity::kNote,
       "condition is a tautology written non-trivially"},
      {"GQD-AUT-001", DiagnosticSeverity::kWarning,
       "unreachable register-automaton states"},
      {"GQD-AUT-002", DiagnosticSeverity::kWarning,
       "dead (non-coaccessible) register-automaton states"},
      {"GQD-AUT-003", DiagnosticSeverity::kError,
       "subexpression has a provably empty language"},
      {"GQD-AUT-004", DiagnosticSeverity::kNote,
       "redundant epsilon/star nesting or duplicate union branch"},
      {"GQD-GRF-001", DiagnosticSeverity::kError,
       "edge label does not occur in the target graph's alphabet"},
      {"GQD-GRF-002", DiagnosticSeverity::kWarning,
       "more registers than the graph has data values (Lemma 23: extra "
       "registers are useless)"},
      {"GQD-PLAN-001", DiagnosticSeverity::kWarning,
       "automaton transitions that can never lie on an accepting run "
       "(unreachable or non-coaccessible endpoints, or an unsatisfiable "
       "check)"},
      {"GQD-PLAN-002", DiagnosticSeverity::kNote,
       "redundant automaton transitions (duplicate, or a check subsumed by "
       "a weaker parallel check)"},
      {"GQD-PLAN-003", DiagnosticSeverity::kNote,
       "plan summary: automaton state/transition reduction applied before "
       "evaluation"},
  };
  return kCodes;
}

}  // namespace gqd
