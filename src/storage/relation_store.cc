#include "storage/relation_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>

#include "common/failpoint.h"
#include "obs/trace.h"
#include "storage/metrics.h"
#include "storage/mmap_file.h"

namespace gqd {

GQD_FAILPOINT_DEFINE(fp_relation_write, "relation.write");
GQD_FAILPOINT_DEFINE(fp_relation_open, "relation.open");

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t MicrosSince(Clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

/// Row statistics over canonical (sorted, deduplicated) pairs.
void ComputeRowStats(const std::vector<std::pair<NodeId, NodeId>>& pairs,
                     std::uint64_t* distinct_sources,
                     std::uint64_t* max_row_degree) {
  *distinct_sources = 0;
  *max_row_degree = 0;
  std::size_t i = 0;
  while (i < pairs.size()) {
    NodeId u = pairs[i].first;
    std::size_t degree = 0;
    for (; i < pairs.size() && pairs[i].first == u; ++i) {
      degree++;
    }
    (*distinct_sources)++;
    *max_row_degree = std::max<std::uint64_t>(*max_row_degree, degree);
  }
}

}  // namespace

Status WriteRelationContainer(std::size_t num_nodes,
                              std::vector<std::pair<NodeId, NodeId>> pairs,
                              std::uint64_t graph_fingerprint,
                              const std::string& path) {
  GQD_TRACE_SPAN(span, "relation.write");
  RelationCounters& counters = RelationCounters::Instance();
  if (GQD_FAILPOINT_FIRED(fp_relation_write)) {
    counters.write_failures.fetch_add(1, std::memory_order_relaxed);
    return fp_relation_write.InjectedFault();
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  for (const auto& [u, v] : pairs) {
    if (u >= num_nodes || v >= num_nodes) {
      counters.write_failures.fetch_add(1, std::memory_order_relaxed);
      return Status::InvalidArgument(
          "relation pair (" + std::to_string(u) + "," + std::to_string(v) +
          ") out of range for " + std::to_string(num_nodes) + " nodes");
    }
  }

  RelationContainerHeader header;
  header.graph_fingerprint = graph_fingerprint;
  header.num_nodes = num_nodes;
  header.num_pairs = pairs.size();
  ComputeRowStats(pairs, &header.distinct_sources, &header.max_row_degree);

  // Flat u32 coordinate stream, row-major sorted — the exact bytes a reader
  // hands to AdaptiveRelation::FromPairs.
  std::vector<std::uint32_t> flat;
  flat.reserve(2 * pairs.size());
  for (const auto& [u, v] : pairs) {
    flat.push_back(u);
    flat.push_back(v);
  }
  std::uint64_t payload_bytes = flat.size() * sizeof(std::uint32_t);
  header.pairs =
      SectionRange{sizeof(RelationContainerHeader), payload_bytes};
  header.file_size = sizeof(RelationContainerHeader) + payload_bytes;
  header.payload_checksum = Fnv1a64(flat.data(), payload_bytes);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    counters.write_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("cannot create '" + path + "'");
  }
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  if (payload_bytes > 0) {
    out.write(reinterpret_cast<const char*>(flat.data()),
              static_cast<std::streamsize>(payload_bytes));
  }
  out.close();
  if (!out) {
    counters.write_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("write to '" + path + "' failed");
  }
  counters.relations_written.fetch_add(1, std::memory_order_relaxed);
  counters.pairs_written.fetch_add(pairs.size(), std::memory_order_relaxed);
  GQD_TRACE_SPAN_ATTR(span, "pairs", pairs.size());
  GQD_TRACE_SPAN_ATTR(span, "bytes", header.file_size);
  return Status::OK();
}

Result<StoredRelation> OpenRelationContainer(
    const std::string& path, std::uint64_t expected_graph_fingerprint) {
  GQD_TRACE_SPAN(span, "relation.load");
  RelationCounters& counters = RelationCounters::Instance();
  Clock::time_point start = Clock::now();
  auto fail = [&counters](Status status) -> Status {
    counters.open_failures.fetch_add(1, std::memory_order_relaxed);
    return status;
  };
  if (GQD_FAILPOINT_FIRED(fp_relation_open)) {
    return fail(fp_relation_open.InjectedFault());
  }
  auto mapped = MmapFile::Open(path);
  if (!mapped.ok()) {
    return fail(mapped.status());
  }
  const MmapFile& file = mapped.value();
  if (file.size() < sizeof(RelationContainerHeader)) {
    return fail(Status::InvalidArgument(
        "'" + path + "' is too small to be a relation container"));
  }
  RelationContainerHeader header;
  std::memcpy(&header, file.data(), sizeof(header));
  if (header.magic != kRelationContainerMagic) {
    return fail(Status::InvalidArgument(
        "'" + path + "' is not a relation container (bad magic)"));
  }
  if (header.version != kRelationContainerVersion) {
    return fail(Status::InvalidArgument(
        "unsupported relation container version " +
        std::to_string(header.version)));
  }
  if (header.file_size != file.size()) {
    return fail(Status::InvalidArgument(
        "relation container truncated: header says " +
        std::to_string(header.file_size) + " bytes, file has " +
        std::to_string(file.size())));
  }
  std::uint64_t expected_payload = header.num_pairs * 2 * sizeof(std::uint32_t);
  if (header.pairs.offset != sizeof(RelationContainerHeader) ||
      header.pairs.size != expected_payload ||
      header.pairs.offset + header.pairs.size != header.file_size) {
    return fail(
        Status::InvalidArgument("relation container section layout invalid"));
  }
  const std::uint32_t* flat =
      reinterpret_cast<const std::uint32_t*>(file.data() + header.pairs.offset);
  if (Fnv1a64(flat, header.pairs.size) != header.payload_checksum) {
    return fail(Status::InvalidArgument(
        "relation container payload checksum mismatch (corrupt file)"));
  }
  if (expected_graph_fingerprint != 0 && header.graph_fingerprint != 0 &&
      header.graph_fingerprint != expected_graph_fingerprint) {
    return fail(Status::InvalidArgument(
        "relation container is bound to a different graph (fingerprint "
        "mismatch)"));
  }

  StoredRelation stored;
  stored.pairs.reserve(header.num_pairs);
  for (std::uint64_t i = 0; i < header.num_pairs; ++i) {
    NodeId u = flat[2 * i];
    NodeId v = flat[2 * i + 1];
    if (u >= header.num_nodes || v >= header.num_nodes) {
      return fail(Status::InvalidArgument(
          "relation container pair out of node range (corrupt file)"));
    }
    if (i > 0 && !(stored.pairs.back() < std::make_pair(u, v))) {
      return fail(Status::InvalidArgument(
          "relation container pairs not strictly row-major sorted"));
    }
    stored.pairs.emplace_back(u, v);
  }
  stored.info.num_nodes = header.num_nodes;
  stored.info.num_pairs = header.num_pairs;
  stored.info.distinct_sources = header.distinct_sources;
  stored.info.max_row_degree = header.max_row_degree;
  stored.info.graph_fingerprint = header.graph_fingerprint;
  stored.info.source_bytes = file.size();
  stored.info.load_micros = MicrosSince(start);
  counters.relations_opened.fetch_add(1, std::memory_order_relaxed);
  counters.pairs_loaded.fetch_add(header.num_pairs,
                                  std::memory_order_relaxed);
  counters.load_micros.fetch_add(stored.info.load_micros,
                                 std::memory_order_relaxed);
  GQD_TRACE_SPAN_ATTR(span, "pairs", header.num_pairs);
  GQD_TRACE_SPAN_ATTR(span, "bytes", file.size());
  return stored;
}

bool IsRelationContainerFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return in.gcount() == sizeof(magic) && magic == kRelationContainerMagic;
}

}  // namespace gqd
