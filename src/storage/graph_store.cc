#include "storage/graph_store.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <limits>
#include <utility>

#include "graph/serialization.h"
#include "obs/trace.h"
#include "storage/format.h"
#include "storage/metrics.h"
#include "storage/mmap_file.h"

namespace gqd {

namespace {

/// Keepalive for a mapped graph: the shared_ptr<const DataGraph> handed to
/// callers aliases `graph` while owning this holder, so the mapping lives
/// exactly as long as any reference to the graph does.
struct MappedGraph {
  MmapFile file;
  DataGraph graph;
};

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IOError("corrupt graph container '" + path + "': " + what);
}

template <typename T>
const T* SectionPtr(const std::byte* base, const SectionRange& range) {
  return reinterpret_cast<const T*>(base + range.offset);
}

/// Header-level sanity: magic, version, declared sizes vs the mapped file.
/// After this returns OK every section pointer is in bounds.
Result<const GraphContainerHeader*> CheckHeader(const MmapFile& file,
                                                const std::string& path) {
  if (file.size() < sizeof(GraphContainerHeader)) {
    return Corrupt(path, "file smaller than the container header");
  }
  const auto* header =
      reinterpret_cast<const GraphContainerHeader*>(file.data());
  if (header->magic != kGraphContainerMagic) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a gqd graph container");
  }
  if (header->version != kGraphContainerVersion) {
    return Status::InvalidArgument(
        "unsupported container version " + std::to_string(header->version) +
        " in '" + path + "' (this build reads version " +
        std::to_string(kGraphContainerVersion) + ")");
  }
  if (header->file_size != file.size()) {
    return Corrupt(path, "header records " + std::to_string(header->file_size) +
                             " bytes but the file has " +
                             std::to_string(file.size()) + " (truncated?)");
  }
  // Count bounds before any size arithmetic, so the multiplications below
  // cannot overflow (each node/edge needs several bytes of sections).
  if (header->num_nodes > std::numeric_limits<NodeId>::max() ||
      header->num_nodes > file.size() ||
      header->num_edges > file.size() / sizeof(LabeledEdge)) {
    return Corrupt(path, "node/edge counts exceed the file size");
  }
  const std::uint64_t n = header->num_nodes;
  const std::uint64_t m = header->num_edges;
  const bool has_names = (header->flags & kFlagHasNodeNames) != 0;
  std::uint64_t expected[kNumGraphSections];
  constexpr std::uint64_t kAnySize = std::numeric_limits<std::uint64_t>::max();
  expected[kLabelNameOffsets] =
      (static_cast<std::uint64_t>(header->num_labels) + 1) * 8;
  expected[kLabelNameBlob] = kAnySize;
  expected[kValueNameOffsets] =
      (static_cast<std::uint64_t>(header->num_values) + 1) * 8;
  expected[kValueNameBlob] = kAnySize;
  expected[kNodeValues] = n * sizeof(ValueId);
  expected[kEdges] = m * sizeof(Edge);
  expected[kOutOffsets] = (n + 1) * 8;
  expected[kOutEntries] = m * sizeof(LabeledEdge);
  expected[kInOffsets] = (n + 1) * 8;
  expected[kInEntries] = m * sizeof(LabeledEdge);
  expected[kNodeNameOffsets] = has_names ? (n + 1) * 8 : 0;
  expected[kNodeNameBlob] = has_names ? kAnySize : 0;
  for (std::uint32_t s = 0; s < kNumGraphSections; s++) {
    const SectionRange& range = header->sections[s];
    if (range.offset % 8 != 0 ||
        range.offset < sizeof(GraphContainerHeader) ||
        range.size > file.size() ||
        range.offset > file.size() - range.size) {
      return Corrupt(path, "section " + std::to_string(s) +
                               " extends past the end of the file");
    }
    if (expected[s] != kAnySize && range.size != expected[s]) {
      return Corrupt(path, "section " + std::to_string(s) + " has " +
                               std::to_string(range.size) + " bytes, expected " +
                               std::to_string(expected[s]));
    }
  }
  return header;
}

/// Cumulative-offsets invariant: first 0, monotone, last == blob size.
Status CheckOffsets(const std::uint64_t* offsets, std::uint64_t count,
                    std::uint64_t blob_size, const std::string& path,
                    const char* what) {
  if (offsets[0] != 0) {
    return Corrupt(path, std::string(what) + " offsets do not start at 0");
  }
  for (std::uint64_t i = 0; i < count; i++) {
    if (offsets[i + 1] < offsets[i]) {
      return Corrupt(path, std::string(what) + " offsets are not monotone");
    }
  }
  if (offsets[count] != blob_size) {
    return Corrupt(path, std::string(what) +
                             " offsets do not cover their blob");
  }
  return Status::OK();
}

/// Structural checks that make every later access memory-safe: id ranges
/// in all columnar sections plus every cumulative-offsets invariant.
/// Linear sequential scans — the price of serving an untrusted file.
Status CheckStructure(const std::byte* base, const GraphContainerHeader& h,
                      const std::string& path) {
  const std::uint64_t n = h.num_nodes;
  const std::uint64_t m = h.num_edges;
  GQD_RETURN_NOT_OK(CheckOffsets(
      SectionPtr<std::uint64_t>(base, h.sections[kLabelNameOffsets]),
      h.num_labels, h.sections[kLabelNameBlob].size, path, "label-name"));
  GQD_RETURN_NOT_OK(CheckOffsets(
      SectionPtr<std::uint64_t>(base, h.sections[kValueNameOffsets]),
      h.num_values, h.sections[kValueNameBlob].size, path, "value-name"));
  if ((h.flags & kFlagHasNodeNames) != 0) {
    GQD_RETURN_NOT_OK(CheckOffsets(
        SectionPtr<std::uint64_t>(base, h.sections[kNodeNameOffsets]), n,
        h.sections[kNodeNameBlob].size, path, "node-name"));
  }
  const ValueId* values = SectionPtr<ValueId>(base, h.sections[kNodeValues]);
  for (std::uint64_t v = 0; v < n; v++) {
    if (values[v] >= h.num_values) {
      return Corrupt(path, "node data value out of range");
    }
  }
  const Edge* edges = SectionPtr<Edge>(base, h.sections[kEdges]);
  for (std::uint64_t e = 0; e < m; e++) {
    if (edges[e].from >= n || edges[e].to >= n ||
        edges[e].label >= h.num_labels) {
      return Corrupt(path, "edge endpoint or label out of range");
    }
  }
  for (GraphSectionId dir : {kOutOffsets, kInOffsets}) {
    const std::uint64_t* offsets = SectionPtr<std::uint64_t>(
        base, h.sections[dir]);
    GQD_RETURN_NOT_OK(CheckOffsets(offsets, n, m, path, "adjacency"));
    const LabeledEdge* entries = SectionPtr<LabeledEdge>(
        base, h.sections[dir == kOutOffsets ? kOutEntries : kInEntries]);
    for (std::uint64_t e = 0; e < m; e++) {
      if (entries[e].node >= n || entries[e].label >= h.num_labels) {
        return Corrupt(path, "adjacency entry out of range");
      }
    }
  }
  return Status::OK();
}

bool LabeledEdgeLess(const LabeledEdge& a, const LabeledEdge& b) {
  return a.label != b.label ? a.label < b.label : a.node < b.node;
}

/// Deep integrity: payload checksum, strictly-sorted per-node CSR, and
/// CSR membership of every edge in both directions.
Status CheckDeep(const std::byte* base, const GraphContainerHeader& h,
                 const std::string& path) {
  std::uint64_t checksum = Fnv1a64(base + sizeof(GraphContainerHeader),
                                   h.file_size - sizeof(GraphContainerHeader));
  if (checksum != h.payload_checksum) {
    return Corrupt(path, "payload checksum mismatch");
  }
  const std::uint64_t n = h.num_nodes;
  const std::uint64_t m = h.num_edges;
  for (GraphSectionId dir : {kOutOffsets, kInOffsets}) {
    const std::uint64_t* offsets =
        SectionPtr<std::uint64_t>(base, h.sections[dir]);
    const LabeledEdge* entries = SectionPtr<LabeledEdge>(
        base, h.sections[dir == kOutOffsets ? kOutEntries : kInEntries]);
    for (std::uint64_t v = 0; v < n; v++) {
      for (std::uint64_t e = offsets[v] + 1; e < offsets[v + 1]; e++) {
        if (!LabeledEdgeLess(entries[e - 1], entries[e])) {
          return Corrupt(path, "adjacency entries not strictly sorted");
        }
      }
    }
  }
  const Edge* edges = SectionPtr<Edge>(base, h.sections[kEdges]);
  const std::uint64_t* out_offsets =
      SectionPtr<std::uint64_t>(base, h.sections[kOutOffsets]);
  const LabeledEdge* out_entries =
      SectionPtr<LabeledEdge>(base, h.sections[kOutEntries]);
  const std::uint64_t* in_offsets =
      SectionPtr<std::uint64_t>(base, h.sections[kInOffsets]);
  const LabeledEdge* in_entries =
      SectionPtr<LabeledEdge>(base, h.sections[kInEntries]);
  for (std::uint64_t e = 0; e < m; e++) {
    LabeledEdge out_key{edges[e].label, edges[e].to};
    LabeledEdge in_key{edges[e].label, edges[e].from};
    if (!std::binary_search(out_entries + out_offsets[edges[e].from],
                            out_entries + out_offsets[edges[e].from + 1],
                            out_key, LabeledEdgeLess) ||
        !std::binary_search(in_entries + in_offsets[edges[e].to],
                            in_entries + in_offsets[edges[e].to + 1], in_key,
                            LabeledEdgeLess)) {
      return Corrupt(path, "edge list and CSR adjacency disagree");
    }
  }
  return Status::OK();
}

/// Interns `count` names sliced from an offsets/blob section pair.
StringInterner InternSection(const std::byte* base,
                             const GraphContainerHeader& h,
                             GraphSectionId offsets_id, GraphSectionId blob_id,
                             std::uint64_t count) {
  const std::uint64_t* offsets =
      SectionPtr<std::uint64_t>(base, h.sections[offsets_id]);
  const char* blob = SectionPtr<char>(base, h.sections[blob_id]);
  StringInterner interner;
  for (std::uint64_t i = 0; i < count; i++) {
    interner.Intern(std::string_view(
        blob + offsets[i], static_cast<std::size_t>(offsets[i + 1] -
                                                    offsets[i])));
  }
  return interner;
}

/// Maps, checks, and wraps a container; shared by OpenContainer and
/// ValidateGraphContainer. `deep` enables CheckDeep + fingerprint
/// verification.
Result<StoredGraph> OpenContainerImpl(const std::string& path, bool deep) {
  GQD_TRACE_SPAN(span, "storage.load");
  StorageCounters& counters = StorageCounters::Instance();
  auto started = std::chrono::steady_clock::now();
  auto file_or = MmapFile::Open(path);
  if (!file_or.ok()) {
    counters.open_failures.fetch_add(1, std::memory_order_relaxed);
    return file_or.status();
  }
  MmapFile file = std::move(file_or).value();
  auto fail = [&counters](Status status) {
    counters.open_failures.fetch_add(1, std::memory_order_relaxed);
    return status;
  };
  auto header_or = CheckHeader(file, path);
  if (!header_or.ok()) {
    return fail(header_or.status());
  }
  const GraphContainerHeader& header = *header_or.value();
  const std::byte* base = file.data();
  if (Status status = CheckStructure(base, header, path); !status.ok()) {
    return fail(std::move(status));
  }
  if (deep) {
    if (Status status = CheckDeep(base, header, path); !status.ok()) {
      return fail(std::move(status));
    }
  }

  StringInterner labels = InternSection(base, header, kLabelNameOffsets,
                                        kLabelNameBlob, header.num_labels);
  StringInterner values = InternSection(base, header, kValueNameOffsets,
                                        kValueNameBlob, header.num_values);
  if (labels.size() != header.num_labels ||
      values.size() != header.num_values) {
    return fail(Corrupt(path, "duplicate label or data-value name"));
  }
  GraphView view;
  view.num_nodes = static_cast<std::size_t>(header.num_nodes);
  view.num_edges = static_cast<std::size_t>(header.num_edges);
  view.node_values = SectionPtr<ValueId>(base, header.sections[kNodeValues]);
  view.edges = SectionPtr<Edge>(base, header.sections[kEdges]);
  view.out_offsets =
      SectionPtr<std::uint64_t>(base, header.sections[kOutOffsets]);
  view.out_entries =
      SectionPtr<LabeledEdge>(base, header.sections[kOutEntries]);
  view.in_offsets =
      SectionPtr<std::uint64_t>(base, header.sections[kInOffsets]);
  view.in_entries = SectionPtr<LabeledEdge>(base, header.sections[kInEntries]);
  if ((header.flags & kFlagHasNodeNames) != 0) {
    view.name_offsets =
        SectionPtr<std::uint64_t>(base, header.sections[kNodeNameOffsets]);
    view.name_blob = SectionPtr<char>(base, header.sections[kNodeNameBlob]);
  }
  DataGraph graph =
      DataGraph::FromView(std::move(labels), std::move(values), view);
  if (deep) {
    // Everything the writer fingerprinted is now reachable; recompute and
    // compare so `--validate` pins content, not just structure.
    if (FingerprintGraphText(graph) != header.fingerprint) {
      return fail(Corrupt(path, "stored fingerprint does not match content"));
    }
    if (Status status = graph.Validate(); !status.ok()) {
      return fail(std::move(status));
    }
  }

  StoredGraph stored;
  stored.info.backend = GraphBackend::kMapped;
  stored.info.fingerprint = FingerprintToHex(header.fingerprint);
  stored.info.source_bytes = file.size();
  stored.info.resident_bytes = graph.EstimateResidentBytes();
  stored.info.load_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  GQD_TRACE_SPAN_ATTR(span, "nodes", header.num_nodes);
  GQD_TRACE_SPAN_ATTR(span, "edges", header.num_edges);
  GQD_TRACE_SPAN_ATTR(span, "bytes", file.size());
  GQD_TRACE_SPAN_ATTR(span, "load_micros", stored.info.load_micros);
  counters.containers_opened.fetch_add(1, std::memory_order_relaxed);
  counters.bytes_mapped.fetch_add(file.size(), std::memory_order_relaxed);
  counters.load_micros.fetch_add(stored.info.load_micros,
                                 std::memory_order_relaxed);

  auto holder = std::make_shared<MappedGraph>();
  holder->file = std::move(file);
  holder->graph = std::move(graph);
  stored.graph = std::shared_ptr<const DataGraph>(holder, &holder->graph);
  return stored;
}

}  // namespace

const char* GraphBackendName(GraphBackend backend) {
  return backend == GraphBackend::kMapped ? "mmap" : "resident";
}

Result<StoredGraph> GraphStore::OpenContainer(const std::string& path,
                                              const OpenOptions& options) {
  return OpenContainerImpl(path, options.validate);
}

Result<StoredGraph> GraphStore::OpenFile(const std::string& path,
                                         const OpenOptions& options) {
  // Sniff the magic without reading the file body — the point of the
  // container is that a multi-hundred-megabyte graph never streams through
  // a parse buffer.
  {
    std::ifstream probe(path, std::ios::binary);
    if (!probe) {
      return Status::IOError("cannot open '" + path + "'");
    }
    std::uint32_t magic = 0;
    probe.read(reinterpret_cast<char*>(&magic), sizeof(magic));
    if (probe.gcount() == sizeof(magic) && magic == kGraphContainerMagic) {
      return OpenContainer(path, options);
    }
  }
  GQD_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return FromText(text);
}

Result<StoredGraph> GraphStore::FromText(const std::string& text) {
  auto started = std::chrono::steady_clock::now();
  GQD_ASSIGN_OR_RETURN(DataGraph graph, ReadGraphText(text));
  StoredGraph stored = FromGraph(std::move(graph));
  stored.info.source_bytes = text.size();
  stored.info.load_micros = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - started)
          .count());
  return stored;
}

StoredGraph GraphStore::FromGraph(DataGraph graph) {
  StoredGraph stored;
  stored.info.backend = GraphBackend::kResident;
  stored.info.fingerprint = FingerprintToHex(FingerprintGraphText(graph));
  stored.info.resident_bytes = graph.EstimateResidentBytes();
  stored.graph = std::make_shared<const DataGraph>(std::move(graph));
  return stored;
}

Status ValidateGraphContainer(const std::string& path) {
  StorageCounters& counters = StorageCounters::Instance();
  counters.validations.fetch_add(1, std::memory_order_relaxed);
  Status status = OpenContainerImpl(path, /*deep=*/true).status();
  if (!status.ok()) {
    counters.validation_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

}  // namespace gqd
