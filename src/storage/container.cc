#include "storage/container.h"

#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/failpoint.h"
#include "graph/serialization.h"
#include "obs/trace.h"
#include "storage/format.h"
#include "storage/metrics.h"

namespace gqd {

GQD_FAILPOINT_DEFINE(fp_storage_write, "storage.write");
GQD_FAILPOINT_DEFINE(fp_storage_truncate, "storage.truncate");

namespace {

/// Concatenates `names` into a blob with cumulative u64 offsets
/// (offsets.size() == names.size() + 1).
void BuildNameBlob(const std::vector<std::string>& names,
                   std::vector<std::uint64_t>* offsets, std::string* blob) {
  offsets->clear();
  blob->clear();
  offsets->reserve(names.size() + 1);
  offsets->push_back(0);
  for (const std::string& name : names) {
    blob->append(name);
    offsets->push_back(blob->size());
  }
}

/// One section's in-memory bytes, queued for the single write pass.
struct PendingSection {
  GraphSectionId id;
  const void* data;
  std::uint64_t size;
};

bool LabeledEdgeLess(const LabeledEdge& a, const LabeledEdge& b) {
  return a.label != b.label ? a.label < b.label : a.node < b.node;
}

}  // namespace

NodeId GraphContainerBuilder::AddNamedNode(ValueId value,
                                           std::string_view name) {
  assert(value < values_.size() && "intern the data value first");
  assert(node_values_.size() < std::numeric_limits<NodeId>::max());
  NodeId id = static_cast<NodeId>(node_values_.size());
  node_values_.push_back(value);
  if (!name.empty()) {
    has_names_ = true;
  }
  if (has_names_) {
    node_names_.resize(node_values_.size());
    node_names_.back() = name;
  }
  return id;
}

void GraphContainerBuilder::AddEdge(NodeId from, LabelId label, NodeId to) {
  assert(from < node_values_.size() && to < node_values_.size() &&
         label < labels_.size());
  edges_.push_back(Edge{from, label, to});
}

Status GraphContainerBuilder::WriteToFile(const std::string& path) {
  GQD_TRACE_SPAN(span, "storage.write");
  StorageCounters& counters = StorageCounters::Instance();
  if (GQD_FAILPOINT_FIRED(fp_storage_write)) {
    counters.write_failures.fetch_add(1, std::memory_order_relaxed);
    return fp_storage_write.InjectedFault();
  }
  const std::size_t n = node_values_.size();
  const std::size_t m = edges_.size();
  GQD_TRACE_SPAN_ATTR(span, "nodes", n);
  GQD_TRACE_SPAN_ATTR(span, "edges", m);

  // CSR adjacency: counting sort by endpoint, then per-node (label, node)
  // sort so the mapped form supports binary-searched membership.
  std::vector<std::uint64_t> out_offsets(n + 1, 0);
  std::vector<std::uint64_t> in_offsets(n + 1, 0);
  for (const Edge& e : edges_) {
    out_offsets[e.from + 1]++;
    in_offsets[e.to + 1]++;
  }
  for (std::size_t v = 0; v < n; v++) {
    out_offsets[v + 1] += out_offsets[v];
    in_offsets[v + 1] += in_offsets[v];
  }
  std::vector<LabeledEdge> out_entries(m);
  std::vector<LabeledEdge> in_entries(m);
  {
    std::vector<std::uint64_t> out_cursor = out_offsets;
    std::vector<std::uint64_t> in_cursor = in_offsets;
    for (const Edge& e : edges_) {
      out_entries[out_cursor[e.from]++] = LabeledEdge{e.label, e.to};
      in_entries[in_cursor[e.to]++] = LabeledEdge{e.label, e.from};
    }
  }
  for (std::size_t v = 0; v < n; v++) {
    std::sort(out_entries.begin() + out_offsets[v],
              out_entries.begin() + out_offsets[v + 1], LabeledEdgeLess);
    std::sort(in_entries.begin() + in_offsets[v],
              in_entries.begin() + in_offsets[v + 1], LabeledEdgeLess);
  }

  // Name blobs. Node names only when at least one node is named.
  std::vector<std::uint64_t> label_offsets, value_offsets, name_offsets;
  std::string label_blob, value_blob, name_blob;
  BuildNameBlob(labels_.names(), &label_offsets, &label_blob);
  BuildNameBlob(values_.names(), &value_offsets, &value_blob);
  if (has_names_) {
    node_names_.resize(n);  // trailing anonymous nodes
    BuildNameBlob(node_names_, &name_offsets, &name_blob);
  }

  // Fingerprint and final validation go through a borrowed view of the
  // arrays built above — the exact structure a reader will map.
  GraphView view;
  view.num_nodes = n;
  view.num_edges = m;
  view.node_values = node_values_.data();
  view.edges = edges_.data();
  view.out_offsets = out_offsets.data();
  view.out_entries = out_entries.data();
  view.in_offsets = in_offsets.data();
  view.in_entries = in_entries.data();
  if (has_names_) {
    view.name_offsets = name_offsets.data();
    view.name_blob = name_blob.data();
  }
  DataGraph staged = DataGraph::FromView(labels_, values_, view);
  GQD_RETURN_NOT_OK(staged.Validate());
  std::uint64_t fingerprint = FingerprintGraphText(staged);

  // Section layout (file order == enum order), 8-byte aligned.
  GraphContainerHeader header;
  header.fingerprint = fingerprint;
  header.num_nodes = n;
  header.num_edges = m;
  header.num_labels = static_cast<std::uint32_t>(labels_.size());
  header.num_values = static_cast<std::uint32_t>(values_.size());
  header.flags = has_names_ ? kFlagHasNodeNames : 0;
  const PendingSection pending[] = {
      {kLabelNameOffsets, label_offsets.data(),
       label_offsets.size() * sizeof(std::uint64_t)},
      {kLabelNameBlob, label_blob.data(), label_blob.size()},
      {kValueNameOffsets, value_offsets.data(),
       value_offsets.size() * sizeof(std::uint64_t)},
      {kValueNameBlob, value_blob.data(), value_blob.size()},
      {kNodeValues, node_values_.data(), n * sizeof(ValueId)},
      {kEdges, edges_.data(), m * sizeof(Edge)},
      {kOutOffsets, out_offsets.data(), (n + 1) * sizeof(std::uint64_t)},
      {kOutEntries, out_entries.data(), m * sizeof(LabeledEdge)},
      {kInOffsets, in_offsets.data(), (n + 1) * sizeof(std::uint64_t)},
      {kInEntries, in_entries.data(), m * sizeof(LabeledEdge)},
      {kNodeNameOffsets, name_offsets.data(),
       has_names_ ? name_offsets.size() * sizeof(std::uint64_t) : 0},
      {kNodeNameBlob, name_blob.data(), name_blob.size()},
  };
  std::uint64_t offset = sizeof(GraphContainerHeader);
  for (const PendingSection& section : pending) {
    offset = AlignSection(offset);
    header.sections[section.id] = SectionRange{offset, section.size};
    offset += section.size;
  }
  header.file_size = offset;

  // Payload checksum: every byte after the header, alignment padding
  // (zeros) included, folded in file order.
  std::uint64_t checksum = 0xcbf29ce484222325ULL;
  static constexpr char kPadding[8] = {};
  std::uint64_t checked = sizeof(GraphContainerHeader);
  for (const PendingSection& section : pending) {
    const SectionRange& range = header.sections[section.id];
    checksum = Fnv1a64(kPadding, range.offset - checked, checksum);
    checksum = Fnv1a64(section.data, range.size, checksum);
    checked = range.offset + range.size;
  }
  header.payload_checksum = checksum;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    counters.write_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("cannot create '" + path + "'");
  }
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  std::uint64_t written = sizeof(GraphContainerHeader);
  for (const PendingSection& section : pending) {
    const SectionRange& range = header.sections[section.id];
    if (range.offset > written) {
      out.write(kPadding,
                static_cast<std::streamsize>(range.offset - written));
    }
    if (range.size > 0) {
      out.write(static_cast<const char*>(section.data),
                static_cast<std::streamsize>(range.size));
    }
    written = range.offset + range.size;
  }
  out.close();
  if (!out) {
    counters.write_failures.fetch_add(1, std::memory_order_relaxed);
    return Status::IOError("write to '" + path + "' failed");
  }
  if (GQD_FAILPOINT_FIRED(fp_storage_truncate)) {
    // Simulate a torn write: leave a half-length file behind so readers
    // must reject it, and surface the fault to the caller.
    (void)::truncate(path.c_str(),
                     static_cast<off_t>(header.file_size / 2));
    counters.write_failures.fetch_add(1, std::memory_order_relaxed);
    return fp_storage_truncate.InjectedFault();
  }
  fingerprint_ = fingerprint;
  counters.containers_written.fetch_add(1, std::memory_order_relaxed);
  counters.bytes_written.fetch_add(header.file_size,
                                   std::memory_order_relaxed);
  GQD_TRACE_SPAN_ATTR(span, "bytes", header.file_size);
  return Status::OK();
}

Status WriteGraphContainer(const DataGraph& graph, const std::string& path) {
  GQD_TRACE_SPAN(span, "storage.convert");
  GraphContainerBuilder builder;
  for (const std::string& label : graph.labels().names()) {
    builder.AddLabel(label);
  }
  for (const std::string& value : graph.data_values().names()) {
    builder.AddDataValue(value);
  }
  std::string synthesized;
  for (NodeId v = 0; v < graph.NumNodes(); v++) {
    std::string_view name = graph.RawNodeName(v);
    // A stored name matching the synthesized anonymous form is dropped:
    // the canonical text (and so the fingerprint) is identical either way,
    // and anonymous million-node graphs skip the name table entirely.
    synthesized = "#" + std::to_string(v);
    if (name == synthesized) {
      name = {};
    }
    builder.AddNamedNode(graph.DataValueOf(v), name);
  }
  for (const Edge& e : graph.edges()) {
    builder.AddEdge(e.from, e.label, e.to);
  }
  return builder.WriteToFile(path);
}

}  // namespace gqd
