// Read-only memory-mapped file (RAII over open/mmap/munmap).
//
// The mapping is private and read-only; the kernel pages bytes in on
// demand, so opening a multi-gigabyte container costs milliseconds and
// touches only the pages a workload actually reads. Instances are movable
// (the GraphStore parks one inside the shared keepalive that backs every
// view-mode DataGraph) and unmap on destruction.

#ifndef GQD_STORAGE_MMAP_FILE_H_
#define GQD_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace gqd {

class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. Fails with IOError on open/stat/mmap failure
  /// and on empty files (a zero-length mapping is undefined). Failpoints:
  /// `storage.open`, `storage.mmap`.
  static Result<MmapFile> Open(const std::string& path);

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }

 private:
  MmapFile(std::byte* data, std::size_t size) : data_(data), size_(size) {}

  void Reset() noexcept;

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace gqd

#endif  // GQD_STORAGE_MMAP_FILE_H_
