// Binary relation container (.gqdr): relations ship beside .gqdg graphs.
//
// PR 7's graph container made million-node graphs cheap to load; this is
// the matching store for the candidate relations `gqd check` consumes. A
// container is one little-endian file:
//
//   +------------------------------+ 0
//   | RelationContainerHeader      |  128 bytes, fixed
//   +------------------------------+ 128
//   | pairs  u32[2 * num_pairs]    |  row-major sorted (u, v) coordinates
//   +------------------------------+ file_size
//
// The pair list is the canonical sorted coordinate order every relation
// representation builds from and emits (graph/sparse_relation.h), so a
// reader can hand the section straight to AdaptiveRelation::FromPairs. The
// header carries nnz statistics (distinct sources, max row degree) so
// admission control can estimate the cost of every backend before touching
// the payload, plus the fingerprint of the graph the relation was generated
// against (0 = unbound) so a mismatched graph/relation pairing is caught at
// load time instead of producing nonsense verdicts.
//
// Validation mirrors the graph container: header sanity and structural
// bounds/sortedness scans always run (every later access is then
// memory-safe), and the FNV-1a payload checksum is re-checked on open —
// the section is O(nnz) bytes, so the scan costs what reading it costs.

#ifndef GQD_STORAGE_RELATION_STORE_H_
#define GQD_STORAGE_RELATION_STORE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"
#include "storage/format.h"

namespace gqd {

/// "GQDR" read as a little-endian u32.
inline constexpr std::uint32_t kRelationContainerMagic = 0x52445147u;

inline constexpr std::uint32_t kRelationContainerVersion = 1;

/// The fixed 128-byte relation container header.
struct RelationContainerHeader {
  std::uint32_t magic = kRelationContainerMagic;
  std::uint32_t version = kRelationContainerVersion;
  std::uint64_t file_size = 0;          ///< total bytes, header included
  std::uint64_t payload_checksum = 0;   ///< FNV-1a 64 of bytes after header
  std::uint64_t graph_fingerprint = 0;  ///< binding graph, 0 = unbound
  std::uint64_t num_nodes = 0;
  std::uint64_t num_pairs = 0;
  std::uint64_t distinct_sources = 0;  ///< rows with at least one pair
  std::uint64_t max_row_degree = 0;    ///< largest single-row cardinality
  SectionRange pairs;                  ///< u32[2 * num_pairs]
  std::uint8_t reserved[48] = {};
};

static_assert(sizeof(RelationContainerHeader) == 128,
              "relation container header must stay 128 bytes");

/// How a stored relation looks before any representation is built: the
/// header statistics plus load cost, surfaced by `gqd info` and used by
/// the admission estimate.
struct RelationStoreInfo {
  std::uint64_t num_nodes = 0;
  std::uint64_t num_pairs = 0;
  std::uint64_t distinct_sources = 0;
  std::uint64_t max_row_degree = 0;
  std::uint64_t graph_fingerprint = 0;  ///< 0 = unbound
  std::uint64_t source_bytes = 0;
  std::uint64_t load_micros = 0;
};

/// A loaded relation: canonical row-major sorted pairs plus store info.
struct StoredRelation {
  std::vector<std::pair<NodeId, NodeId>> pairs;
  RelationStoreInfo info;
};

/// Writes `pairs` (canonicalized: row-major sorted, deduplicated) as a
/// relation container bound to `graph_fingerprint` (pass 0 to leave the
/// relation unbound). Traced as `relation.write`; failpoint
/// `relation.write`.
Status WriteRelationContainer(std::size_t num_nodes,
                              std::vector<std::pair<NodeId, NodeId>> pairs,
                              std::uint64_t graph_fingerprint,
                              const std::string& path);

/// Opens and fully validates the relation container at `path` (structural
/// bounds + strict row-major sortedness + payload checksum). If
/// `expected_graph_fingerprint` is nonzero and the container is bound, the
/// fingerprints must match. Traced as `relation.load`; failpoint
/// `relation.open`.
Result<StoredRelation> OpenRelationContainer(
    const std::string& path, std::uint64_t expected_graph_fingerprint = 0);

/// True iff `path` starts with the relation container magic.
bool IsRelationContainerFile(const std::string& path);

}  // namespace gqd

#endif  // GQD_STORAGE_RELATION_STORE_H_
