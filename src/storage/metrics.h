// Storage-path observability: process-wide counters plus their Prometheus
// mirror.
//
// Container opens, writes, and validations bump the atomics in
// StorageCounters as they happen; UpdateStorageMetrics mirrors the totals
// into a MetricsRegistry as `gqd_storage_*` families at exposition time —
// the same pull-based pattern UpdateFailpointMetrics uses, so the storage
// hot paths never touch the registry mutex.

#ifndef GQD_STORAGE_METRICS_H_
#define GQD_STORAGE_METRICS_H_

#include <atomic>
#include <cstdint>

#include "graph/sparse_relation.h"
#include "obs/metrics.h"

namespace gqd {

/// Process-wide storage counters (monotonic totals).
struct StorageCounters {
  std::atomic<std::uint64_t> containers_opened{0};
  std::atomic<std::uint64_t> open_failures{0};
  std::atomic<std::uint64_t> containers_written{0};
  std::atomic<std::uint64_t> write_failures{0};
  std::atomic<std::uint64_t> validations{0};
  std::atomic<std::uint64_t> validation_failures{0};
  std::atomic<std::uint64_t> bytes_mapped{0};   ///< summed over opens
  std::atomic<std::uint64_t> bytes_written{0};  ///< summed over writes
  std::atomic<std::uint64_t> load_micros{0};    ///< summed open latency

  static StorageCounters& Instance();
};

/// Mirrors StorageCounters into `registry`:
///   gqd_storage_container_opens_total, gqd_storage_open_failures_total,
///   gqd_storage_container_writes_total, gqd_storage_write_failures_total,
///   gqd_storage_validations_total, gqd_storage_validation_failures_total,
///   gqd_storage_mapped_bytes_total, gqd_storage_written_bytes_total,
///   gqd_storage_load_microseconds_total.
void UpdateStorageMetrics(MetricsRegistry* registry);

/// Process-wide relation-path counters (monotonic totals): container I/O
/// from storage/relation_store.cc plus backend selections and admission
/// refusals bumped by the check paths (CLI and serve).
struct RelationCounters {
  std::atomic<std::uint64_t> relations_opened{0};
  std::atomic<std::uint64_t> open_failures{0};
  std::atomic<std::uint64_t> relations_written{0};
  std::atomic<std::uint64_t> write_failures{0};
  std::atomic<std::uint64_t> pairs_loaded{0};    ///< summed over opens
  std::atomic<std::uint64_t> pairs_written{0};   ///< summed over writes
  std::atomic<std::uint64_t> load_micros{0};     ///< summed open latency
  std::atomic<std::uint64_t> builds_dense{0};    ///< backend selections
  std::atomic<std::uint64_t> builds_sparse{0};
  std::atomic<std::uint64_t> builds_blocked{0};
  std::atomic<std::uint64_t> build_micros{0};    ///< summed build latency
  std::atomic<std::uint64_t> admission_refusals{0};

  static RelationCounters& Instance();
};

/// Bumps the builds_* counter matching the backend a check selected.
void NoteRelationBackendSelected(RelationBackend backend);

/// Mirrors RelationCounters into `registry`:
///   gqd_relation_container_opens_total, gqd_relation_open_failures_total,
///   gqd_relation_container_writes_total, gqd_relation_write_failures_total,
///   gqd_relation_pairs_loaded_total, gqd_relation_pairs_written_total,
///   gqd_relation_load_microseconds_total,
///   gqd_relation_builds_total{backend="dense"|"sparse"|"blocked"},
///   gqd_relation_build_microseconds_total,
///   gqd_relation_admission_refusals_total.
void UpdateRelationMetrics(MetricsRegistry* registry);

}  // namespace gqd

#endif  // GQD_STORAGE_METRICS_H_
