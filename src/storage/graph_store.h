// GraphStore: one loading abstraction over two graph backends.
//
//  - resident: the classic path — parse the node/edge text format into an
//    owned DataGraph;
//  - mmap: map a binary graph container (format.h) and serve a zero-copy
//    view-mode DataGraph whose adjacency/value sections live in the mapping.
//
// Callers never branch on the backend: every entry point returns a
// StoredGraph holding a shared_ptr<const DataGraph> (the mmap keepalive is
// hidden in the pointer's control block) plus a GraphStoreInfo describing
// how the graph is stored — backend, fingerprint, file size, resident
// bytes, load time. OpenFile sniffs the container magic, so `gqd eval g.bin
// ...` and `gqd eval g.txt ...` are the same command.
//
// Opening a container always performs the structural checks that make every
// subsequent access memory-safe (header sanity, section bounds, offset
// monotonicity, id ranges) — linear sequential scans, no hashing. The
// optional deep validation (OpenOptions::validate / ValidateGraphContainer,
// surfaced as `gqd convert --validate`) additionally re-checks the payload
// checksum, the sorted-CSR invariant, CSR↔edge-list agreement, and the
// stored fingerprint. Corruption at either level fails with a Status; it
// never crashes.

#ifndef GQD_STORAGE_GRAPH_STORE_H_
#define GQD_STORAGE_GRAPH_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "graph/data_graph.h"

namespace gqd {

/// How a loaded graph is stored in this process.
enum class GraphBackend {
  kResident,  ///< parsed text, owned vectors
  kMapped,    ///< binary container served zero-copy out of an mmap
};

/// Label-friendly backend name: "resident" or "mmap".
const char* GraphBackendName(GraphBackend backend);

/// How a StoredGraph is held: backend, identity, and cost of loading it.
struct GraphStoreInfo {
  GraphBackend backend = GraphBackend::kResident;
  std::string fingerprint;          ///< 16 lowercase hex digits
  std::uint64_t source_bytes = 0;   ///< file (or text) size in bytes
  std::uint64_t resident_bytes = 0; ///< heap footprint of the loaded form
  std::uint64_t load_micros = 0;    ///< parse / map + check latency
};

/// A loaded graph plus its storage description. The shared_ptr keeps any
/// backing mmap alive for as long as the graph is referenced.
struct StoredGraph {
  std::shared_ptr<const DataGraph> graph;
  GraphStoreInfo info;
};

struct OpenOptions {
  /// Run the deep integrity checks (checksum, sorted CSR, CSR↔edges,
  /// fingerprint) on containers before serving them.
  bool validate = false;
};

class GraphStore {
 public:
  /// Loads `path`, sniffing the format: a container magic selects the mmap
  /// backend, anything else parses as graph text into the resident backend.
  static Result<StoredGraph> OpenFile(const std::string& path,
                                      const OpenOptions& options = {});

  /// Maps the binary container at `path`. Traced as `storage.load`.
  static Result<StoredGraph> OpenContainer(const std::string& path,
                                           const OpenOptions& options = {});

  /// Parses graph text into the resident backend.
  static Result<StoredGraph> FromText(const std::string& text);

  /// Wraps an already-built graph (generators, tests) as a StoredGraph.
  static StoredGraph FromGraph(DataGraph graph);
};

/// Deep-validates the container at `path` (checksum, invariants,
/// fingerprint) without keeping it loaded. OK means a subsequent open
/// serves exactly the graph the writer fingerprinted.
Status ValidateGraphContainer(const std::string& path);

}  // namespace gqd

#endif  // GQD_STORAGE_GRAPH_STORE_H_
