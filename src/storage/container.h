// Writing binary graph containers (format.h describes the layout).
//
// Two producers share one writer core:
//
//  - WriteGraphContainer converts an existing DataGraph (the `gqd convert`
//    path), canonicalizing synthesized "#<id>" names back to anonymous so
//    text → binary → text round-trips byte-identical;
//  - GraphContainerBuilder is a GraphSink, so the streaming generators
//    (GenerateScaleFree / GenerateGrid) emit million-node graphs straight
//    to disk without ever materializing the text form or a per-node
//    adjacency-vector DataGraph.
//
// The writer computes the CSR sections (per-node entries sorted by
// (label, node)), the content fingerprint (FNV-1a 64 of the canonical text,
// streamed line by line), and the payload checksum, then writes the file in
// one pass. Failpoints: `storage.write` (I/O failure before any byte lands)
// and `storage.truncate` (a torn write: the file is cut in half after a
// successful write and the injected fault is returned).

#ifndef GQD_STORAGE_CONTAINER_H_
#define GQD_STORAGE_CONTAINER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/generators.h"

namespace gqd {

/// Accumulates a graph in compact columnar form (value column + edge list —
/// no per-node vectors, no name strings for anonymous nodes) and writes it
/// as a binary container. Memory while building: ~16 bytes per edge plus
/// 4 bytes per node, so a million-node graph builds in tens of megabytes.
class GraphContainerBuilder : public GraphSink {
 public:
  LabelId AddLabel(std::string_view name) override {
    return labels_.Intern(name);
  }
  ValueId AddDataValue(std::string_view name) override {
    return values_.Intern(name);
  }
  NodeId AddNode(ValueId value) override { return AddNamedNode(value, ""); }
  /// Adds a node carrying a display name ("" = anonymous).
  NodeId AddNamedNode(ValueId value, std::string_view name);
  void AddEdge(NodeId from, LabelId label, NodeId to) override;

  std::size_t NumNodes() const { return node_values_.size(); }
  std::size_t NumEdges() const { return edges_.size(); }

  /// Validates the accumulated graph, then writes it as a version-1
  /// container. The builder is left intact (WriteToFile may be called
  /// again, e.g. to emit the same graph to a second path).
  Status WriteToFile(const std::string& path);

  /// Content fingerprint of the last successful WriteToFile.
  std::uint64_t fingerprint() const { return fingerprint_; }

 private:
  StringInterner labels_;
  StringInterner values_;
  std::vector<ValueId> node_values_;
  std::vector<Edge> edges_;
  // Sparse name table: set only for named nodes. Indexed lazily because
  // generated graphs are fully anonymous.
  std::vector<std::string> node_names_;
  bool has_names_ = false;
  std::uint64_t fingerprint_ = 0;
};

/// Converts `graph` (resident or view) to a binary container at `path`.
/// Nodes whose stored name equals the synthesized "#<id>" form are written
/// as anonymous, so the canonical text — and therefore the fingerprint —
/// is unchanged by the conversion. Traced as `storage.convert`.
Status WriteGraphContainer(const DataGraph& graph, const std::string& path);

}  // namespace gqd

#endif  // GQD_STORAGE_CONTAINER_H_
