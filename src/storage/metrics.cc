#include "storage/metrics.h"

namespace gqd {

StorageCounters& StorageCounters::Instance() {
  static StorageCounters counters;
  return counters;
}

void UpdateStorageMetrics(MetricsRegistry* registry) {
  const StorageCounters& c = StorageCounters::Instance();
  auto mirror = [&](const char* name,
                    const std::atomic<std::uint64_t>& value) {
    registry->GetCounter(name)->Set(value.load(std::memory_order_relaxed));
  };
  mirror("gqd_storage_container_opens_total", c.containers_opened);
  mirror("gqd_storage_open_failures_total", c.open_failures);
  mirror("gqd_storage_container_writes_total", c.containers_written);
  mirror("gqd_storage_write_failures_total", c.write_failures);
  mirror("gqd_storage_validations_total", c.validations);
  mirror("gqd_storage_validation_failures_total", c.validation_failures);
  mirror("gqd_storage_mapped_bytes_total", c.bytes_mapped);
  mirror("gqd_storage_written_bytes_total", c.bytes_written);
  mirror("gqd_storage_load_microseconds_total", c.load_micros);
}

RelationCounters& RelationCounters::Instance() {
  static RelationCounters counters;
  return counters;
}

void NoteRelationBackendSelected(RelationBackend backend) {
  RelationCounters& c = RelationCounters::Instance();
  switch (backend) {
    case RelationBackend::kDense:
      c.builds_dense.fetch_add(1, std::memory_order_relaxed);
      break;
    case RelationBackend::kSparse:
      c.builds_sparse.fetch_add(1, std::memory_order_relaxed);
      break;
    case RelationBackend::kBlocked:
      c.builds_blocked.fetch_add(1, std::memory_order_relaxed);
      break;
    case RelationBackend::kAuto:
      break;  // callers resolve kAuto before building
  }
}

void UpdateRelationMetrics(MetricsRegistry* registry) {
  const RelationCounters& c = RelationCounters::Instance();
  auto mirror = [&](const char* name,
                    const std::atomic<std::uint64_t>& value) {
    registry->GetCounter(name)->Set(value.load(std::memory_order_relaxed));
  };
  mirror("gqd_relation_container_opens_total", c.relations_opened);
  mirror("gqd_relation_open_failures_total", c.open_failures);
  mirror("gqd_relation_container_writes_total", c.relations_written);
  mirror("gqd_relation_write_failures_total", c.write_failures);
  mirror("gqd_relation_pairs_loaded_total", c.pairs_loaded);
  mirror("gqd_relation_pairs_written_total", c.pairs_written);
  mirror("gqd_relation_load_microseconds_total", c.load_micros);
  mirror("gqd_relation_build_microseconds_total", c.build_micros);
  mirror("gqd_relation_admission_refusals_total", c.admission_refusals);
  auto builds = [&](const char* backend,
                    const std::atomic<std::uint64_t>& value) {
    registry->GetCounter("gqd_relation_builds_total", {{"backend", backend}})
        ->Set(value.load(std::memory_order_relaxed));
  };
  builds("dense", c.builds_dense);
  builds("sparse", c.builds_sparse);
  builds("blocked", c.builds_blocked);
}

}  // namespace gqd
