#include "storage/metrics.h"

namespace gqd {

StorageCounters& StorageCounters::Instance() {
  static StorageCounters counters;
  return counters;
}

void UpdateStorageMetrics(MetricsRegistry* registry) {
  const StorageCounters& c = StorageCounters::Instance();
  auto mirror = [&](const char* name,
                    const std::atomic<std::uint64_t>& value) {
    registry->GetCounter(name)->Set(value.load(std::memory_order_relaxed));
  };
  mirror("gqd_storage_container_opens_total", c.containers_opened);
  mirror("gqd_storage_open_failures_total", c.open_failures);
  mirror("gqd_storage_container_writes_total", c.containers_written);
  mirror("gqd_storage_write_failures_total", c.write_failures);
  mirror("gqd_storage_validations_total", c.validations);
  mirror("gqd_storage_validation_failures_total", c.validation_failures);
  mirror("gqd_storage_mapped_bytes_total", c.bytes_mapped);
  mirror("gqd_storage_written_bytes_total", c.bytes_written);
  mirror("gqd_storage_load_microseconds_total", c.load_micros);
}

}  // namespace gqd
