#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/failpoint.h"

namespace gqd {

GQD_FAILPOINT_DEFINE(fp_storage_open, "storage.open");
GQD_FAILPOINT_DEFINE(fp_storage_mmap, "storage.mmap");

namespace {

Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " '" + path + "': " + std::strerror(errno));
}

}  // namespace

MmapFile::~MmapFile() { Reset(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void MmapFile::Reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  if (GQD_FAILPOINT_FIRED(fp_storage_open)) {
    return fp_storage_open.InjectedFault();
  }
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return ErrnoError("cannot open", path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = ErrnoError("cannot stat", path);
    ::close(fd);
    return status;
  }
  if (st.st_size <= 0) {
    ::close(fd);
    return Status::IOError("cannot map empty file '" + path + "'");
  }
  std::size_t size = static_cast<std::size_t>(st.st_size);
  void* mapped = MAP_FAILED;
  if (GQD_FAILPOINT_FIRED(fp_storage_mmap)) {
    ::close(fd);
    return fp_storage_mmap.InjectedFault();
  }
  mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference; the descriptor is no longer needed.
  ::close(fd);
  if (mapped == MAP_FAILED) {
    return ErrnoError("cannot mmap", path);
  }
  return MmapFile(static_cast<std::byte*>(mapped), size);
}

}  // namespace gqd
