// On-disk layout of the gqd binary graph container (version 1).
//
// A container is one little-endian file:
//
//   +----------------------------+ 0
//   | GraphContainerHeader       |  256 bytes, fixed
//   +----------------------------+ 256
//   | sections (8-byte aligned)  |  order below; ranges in the header
//   +----------------------------+ file_size
//
// Sections (all offsets are absolute file offsets, all 8-byte aligned):
//
//   kLabelNameOffsets  u64[num_labels + 1]   cumulative offsets into
//   kLabelNameBlob     char[]                the label-name blob
//   kValueNameOffsets  u64[num_values + 1]   cumulative offsets into
//   kValueNameBlob     char[]                the data-value-name blob
//   kNodeValues        u32[num_nodes]        ρ(v) as dense ValueIds
//   kEdges             Edge[num_edges]       insertion order — the canonical
//                                            serialization order, so a text
//                                            round-trip is byte-identical
//   kOutOffsets        u64[num_nodes + 1]    CSR: out-adjacency extents
//   kOutEntries        LabeledEdge[num_edges]  sorted by (label, node)
//   kInOffsets         u64[num_nodes + 1]    CSR: in-adjacency extents
//   kInEntries         LabeledEdge[num_edges]  sorted by (label, node)
//   kNodeNameOffsets   u64[num_nodes + 1]    only when kFlagHasNodeNames
//   kNodeNameBlob      char[]                ("" extent = anonymous node)
//
// The header carries the graph's content fingerprint — FNV-1a 64 of the
// canonical text serialization, the same value GraphRegistry keys result
// caches with — and an FNV-1a checksum of every payload byte after the
// header. A mapped container is served zero-copy: DataGraph's view mode
// points straight into the sections, so the structs here are the in-memory
// layout too (static_asserts below pin the ABI).

#ifndef GQD_STORAGE_FORMAT_H_
#define GQD_STORAGE_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "graph/data_graph.h"

namespace gqd {

/// "GQDG" read as a little-endian u32.
inline constexpr std::uint32_t kGraphContainerMagic = 0x47445147u;

inline constexpr std::uint32_t kGraphContainerVersion = 1;

/// Header flag: the container carries a node-name table (kNodeNameOffsets /
/// kNodeNameBlob are present). Generated graphs are anonymous and omit it.
inline constexpr std::uint32_t kFlagHasNodeNames = 1u << 0;

/// One section extent: absolute file offset plus byte size.
struct SectionRange {
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
};

/// Section indices into GraphContainerHeader::sections, in file order.
enum GraphSectionId : std::uint32_t {
  kLabelNameOffsets = 0,
  kLabelNameBlob,
  kValueNameOffsets,
  kValueNameBlob,
  kNodeValues,
  kEdges,
  kOutOffsets,
  kOutEntries,
  kInOffsets,
  kInEntries,
  kNodeNameOffsets,
  kNodeNameBlob,
  kNumGraphSections,
};

/// The fixed 256-byte container header.
struct GraphContainerHeader {
  std::uint32_t magic = kGraphContainerMagic;
  std::uint32_t version = kGraphContainerVersion;
  std::uint64_t file_size = 0;         ///< total bytes, header included
  std::uint64_t fingerprint = 0;       ///< FNV-1a 64 of the canonical text
  std::uint64_t payload_checksum = 0;  ///< FNV-1a 64 of bytes after header
  std::uint64_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint32_t num_labels = 0;
  std::uint32_t num_values = 0;
  std::uint32_t flags = 0;
  std::uint32_t reserved = 0;
  SectionRange sections[kNumGraphSections] = {};
};

// The view path reads these structs straight out of the mapping, so their
// layout is the file format.
static_assert(sizeof(GraphContainerHeader) == 256,
              "container header must stay 256 bytes");
static_assert(sizeof(SectionRange) == 16);
static_assert(sizeof(Edge) == 12 && alignof(Edge) == 4,
              "kEdges stores Edge structs in place");
static_assert(sizeof(LabeledEdge) == 8 && alignof(LabeledEdge) == 4,
              "CSR entry sections store LabeledEdge structs in place");
static_assert(sizeof(ValueId) == 4);

/// FNV-1a 64 over a byte range; `seed` defaults to the offset basis so
/// multi-chunk checksums can be folded incrementally.
inline std::uint64_t Fnv1a64(const void* data, std::size_t size,
                             std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; i++) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;  // FNV prime
  }
  return hash;
}

/// Rounds `offset` up to the section alignment (8 bytes).
inline std::uint64_t AlignSection(std::uint64_t offset) {
  return (offset + 7) & ~std::uint64_t{7};
}

}  // namespace gqd

#endif  // GQD_STORAGE_FORMAT_H_
