// Graph-relative query simplification — the paper's Discussion (§6) asks
// for "good" defining queries; the raw synthesized ones are star-free
// unions of witnesses ("do not have an interesting structure").
//
// Two layers:
//
//  * *Structural normalization* (sound on every graph): flatten unions and
//    concatenations, drop ε units of concatenation (w·d = w in data-path
//    concatenation, so L(e·ε) = L(e)), deduplicate union branches,
//    collapse (e=)= to e= and (e≠)= / (e=)≠ to the empty expression, drop
//    ⊤ condition tests.
//
//  * *Generalization with verification* (sound relative to one graph):
//    propose candidate rewrites that may change the language — e.g. a
//    union of powers b, b·b, b·b·b generalizes to b⁺, and a union of
//    =-restricted powers to (b⁺)= — and accept a candidate only when
//    re-evaluating it on the graph reproduces the original relation
//    exactly. This turns the synthesized movieLink query
//    (friend)= | (friend friend)= | (friend friend friend)=
//    back into the idiomatic (friend⁺)=.

#ifndef GQD_SYNTHESIS_SIMPLIFY_H_
#define GQD_SYNTHESIS_SIMPLIFY_H_

#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "ree/ast.h"
#include "regex/ast.h"

namespace gqd {

/// Structural normalization only (graph-independent, language-preserving).
ReePtr NormalizeRee(const ReePtr& expression);
RegexPtr NormalizeRegex(const RegexPtr& expression);

/// Normalizes, then tries star-generalizations of union-of-powers shapes;
/// each candidate is verified by evaluation against `relation` (which must
/// equal the evaluation of `expression` — callers pass the synthesized
/// pair). Returns the simplest verified equivalent.
Result<ReePtr> SimplifyReeOnGraph(const DataGraph& graph,
                                  const ReePtr& expression,
                                  const BinaryRelation& relation);

Result<RegexPtr> SimplifyRegexOnGraph(const DataGraph& graph,
                                      const RegexPtr& expression,
                                      const BinaryRelation& relation);

}  // namespace gqd

#endif  // GQD_SYNTHESIS_SIMPLIFY_H_
