#include "synthesis/synthesis.h"

#include <algorithm>

#include <string>

#include "synthesis/lint_postpass.h"

namespace gqd {

Result<std::optional<RegexPtr>> SynthesizeRpqQuery(
    const DataGraph& graph, const BinaryRelation& relation,
    const KRemDefinabilityOptions& options) {
  GQD_ASSIGN_OR_RETURN(RpqDefinabilityResult result,
                       CheckRpqDefinability(graph, relation, options));
  switch (result.verdict) {
    case DefinabilityVerdict::kDefinable: {
      RegexPtr query = RegexFromWitnesses(result, graph.labels());
      // Post-pass: a synthesized query with error-level lint findings is a
      // synthesizer bug (see lint_postpass.h); warnings are expected and
      // left for graph-relative simplification.
      GQD_RETURN_NOT_OK(LintSynthesizedRegex(graph, relation, query).status());
      return std::optional<RegexPtr>(std::move(query));
    }
    case DefinabilityVerdict::kNotDefinable:
      return std::optional<RegexPtr>();
    case DefinabilityVerdict::kBudgetExhausted:
      return Status::ResourceExhausted("RPQ definability budget exhausted");
  }
  return Status::Internal("unreachable");
}

Result<std::optional<RemPtr>> SynthesizeKRemQuery(
    const DataGraph& graph, const BinaryRelation& relation, std::size_t k,
    const KRemDefinabilityOptions& options) {
  if (relation.Empty()) {
    // ε[¬⊤] has empty language on every graph.
    return std::optional<RemPtr>(
        rem::Test(rem::Epsilon(), cond::False()));
  }
  GQD_ASSIGN_OR_RETURN(KRemDefinabilityResult result,
                       CheckKRemDefinability(graph, relation, k, options));
  switch (result.verdict) {
    case DefinabilityVerdict::kDefinable: {
      // Different pairs often share a witness; dedupe the union branches.
      std::vector<RemPtr> parts;
      std::vector<std::string> seen;
      for (const KRemWitness& witness : result.witnesses) {
        RemPtr part = BasicRemFromBlocks(witness.blocks, k, graph.labels());
        std::string printed = RemToString(part);
        if (std::find(seen.begin(), seen.end(), printed) == seen.end()) {
          seen.push_back(std::move(printed));
          parts.push_back(std::move(part));
        }
      }
      RemPtr query = rem::Union(std::move(parts));
      GQD_RETURN_NOT_OK(LintSynthesizedRem(graph, relation, query).status());
      return std::optional<RemPtr>(std::move(query));
    }
    case DefinabilityVerdict::kNotDefinable:
      return std::optional<RemPtr>();
    case DefinabilityVerdict::kBudgetExhausted:
      return Status::ResourceExhausted("k-REM definability budget exhausted");
  }
  return Status::Internal("unreachable");
}

Result<std::optional<ReePtr>> SynthesizeReeQuery(
    const DataGraph& graph, const BinaryRelation& relation,
    const ReeDefinabilityOptions& options) {
  GQD_ASSIGN_OR_RETURN(ReeDefinabilityResult result,
                       CheckReeDefinability(graph, relation, options));
  switch (result.verdict) {
    case DefinabilityVerdict::kDefinable:
      GQD_RETURN_NOT_OK(
          LintSynthesizedRee(graph, relation, result.defining_expression)
              .status());
      return std::optional<ReePtr>(result.defining_expression);
    case DefinabilityVerdict::kNotDefinable:
      return std::optional<ReePtr>();
    case DefinabilityVerdict::kBudgetExhausted:
      return Status::ResourceExhausted("REE definability budget exhausted");
  }
  return Status::Internal("unreachable");
}

Result<Ucrdpq> SynthesizeCanonicalUcrdpq(const DataGraph& graph,
                                         const TupleRelation& relation) {
  if (relation.empty()) {
    return Status::InvalidArgument(
        "the canonical UCRDPQ needs a non-empty relation (an empty S is "
        "definable by any query with an unsatisfiable atom)");
  }
  std::size_t n = graph.NumNodes();
  auto var = [](NodeId v) { return "x" + std::to_string(v); };

  // φ_G(x̄): one atom per edge; (Σ⁺)= / (Σ⁺)≠ atoms per reachable pair with
  // equal / distinct data values.
  std::vector<std::string> labels;
  for (std::uint32_t a = 0; a < graph.NumLabels(); a++) {
    labels.push_back(graph.labels().NameOf(a));
  }
  ReePtr sigma_plus = ree::Plus(
      [&] {
        std::vector<ReePtr> letters;
        for (const std::string& name : labels) {
          letters.push_back(ree::Letter(name));
        }
        return ree::Union(std::move(letters));
      }());
  ReePtr reach_eq = ree::Eq(sigma_plus);
  ReePtr reach_neq = ree::Neq(sigma_plus);

  std::vector<CrdpqAtom> phi;
  for (const Edge& e : graph.edges()) {
    phi.push_back({var(e.from), var(e.to),
                   RegexPtr(re::Letter(graph.labels().NameOf(e.label)))});
  }
  // Reachability via one or more edges.
  BinaryRelation edges(n);
  for (const Edge& e : graph.edges()) {
    edges.Set(e.from, e.to);
  }
  BinaryRelation reach_plus = TransitivePlus(edges);
  for (NodeId u = 0; u < n; u++) {
    for (NodeId v = 0; v < n; v++) {
      if (!reach_plus.Test(u, v)) {
        continue;
      }
      if (graph.DataValueOf(u) == graph.DataValueOf(v)) {
        phi.push_back({var(u), var(v), reach_eq});
      } else {
        phi.push_back({var(u), var(v), reach_neq});
      }
    }
  }

  Ucrdpq query;
  for (const NodeTuple& tuple : relation.tuples()) {
    Crdpq disjunct;
    for (NodeId v : tuple) {
      disjunct.answer_variables.push_back(var(v));
    }
    disjunct.atoms = phi;
    // Every answer variable must occur in some atom; isolated nodes (no
    // edges, no reachable partners beyond themselves) need a harmless
    // anchor. (Σ⁺)=/(Σ⁺)≠ atoms above cover nodes on cycles only when
    // reachable; add a self ε-atom as a universal anchor.
    for (NodeId v : tuple) {
      bool anchored = false;
      for (const CrdpqAtom& atom : disjunct.atoms) {
        if (atom.from_variable == var(v) || atom.to_variable == var(v)) {
          anchored = true;
          break;
        }
      }
      if (!anchored) {
        disjunct.atoms.push_back(
            {var(v), var(v), ReePtr(ree::Epsilon())});
      }
    }
    query.disjuncts.push_back(std::move(disjunct));
  }
  GQD_RETURN_NOT_OK(query.Validate());
  return query;
}

}  // namespace gqd
