#include "synthesis/simplify.h"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"

namespace gqd {

namespace {

/// Canonical empty-language REE: (ε)≠.
ReePtr EmptyRee() { return ree::Neq(ree::Epsilon()); }

bool IsEmptyRee(const ReePtr& e) {
  return e->kind == ReeKind::kNeq &&
         e->children[0]->kind == ReeKind::kEpsilon;
}

}  // namespace

ReePtr NormalizeRee(const ReePtr& expression) {
  switch (expression->kind) {
    case ReeKind::kEpsilon:
    case ReeKind::kLetter:
      return expression;
    case ReeKind::kUnion: {
      std::vector<ReePtr> flat;
      std::vector<std::string> seen;
      for (const ReePtr& child : expression->children) {
        ReePtr c = NormalizeRee(child);
        std::vector<ReePtr> parts =
            (c->kind == ReeKind::kUnion) ? c->children
                                         : std::vector<ReePtr>{c};
        for (const ReePtr& part : parts) {
          if (IsEmptyRee(part)) {
            continue;  // ∅ is the unit of union
          }
          std::string key = ReeToString(part);
          if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
            seen.push_back(std::move(key));
            flat.push_back(part);
          }
        }
      }
      if (flat.empty()) {
        return EmptyRee();
      }
      return ree::Union(std::move(flat));
    }
    case ReeKind::kConcat: {
      std::vector<ReePtr> flat;
      for (const ReePtr& child : expression->children) {
        ReePtr c = NormalizeRee(child);
        if (IsEmptyRee(c)) {
          return EmptyRee();  // ∅ annihilates concatenation
        }
        if (c->kind == ReeKind::kEpsilon) {
          continue;  // L(e·ε) = L(e) under data-path concatenation
        }
        if (c->kind == ReeKind::kConcat) {
          flat.insert(flat.end(), c->children.begin(), c->children.end());
        } else {
          flat.push_back(c);
        }
      }
      if (flat.empty()) {
        return ree::Epsilon();
      }
      return ree::Concat(std::move(flat));
    }
    case ReeKind::kPlus: {
      ReePtr c = NormalizeRee(expression->children[0]);
      if (c->kind == ReeKind::kPlus || c->kind == ReeKind::kEpsilon) {
        return c;  // (e⁺)⁺ = e⁺; ε⁺ = ε (boundary-sharing concatenation)
      }
      if (IsEmptyRee(c)) {
        return EmptyRee();
      }
      return ree::Plus(std::move(c));
    }
    case ReeKind::kEq: {
      ReePtr c = NormalizeRee(expression->children[0]);
      if (c->kind == ReeKind::kEpsilon || c->kind == ReeKind::kEq) {
        return c;  // single values have equal endpoints; (e=)= = e=
      }
      if (c->kind == ReeKind::kNeq || IsEmptyRee(c)) {
        return EmptyRee();  // (e≠)= = ∅
      }
      return ree::Eq(std::move(c));
    }
    case ReeKind::kNeq: {
      ReePtr c = NormalizeRee(expression->children[0]);
      if (c->kind == ReeKind::kNeq) {
        return c;  // (e≠)≠ = e≠
      }
      if (c->kind == ReeKind::kEq || c->kind == ReeKind::kEpsilon ||
          IsEmptyRee(c)) {
        return EmptyRee();  // (e=)≠ = ε≠ = ∅
      }
      return ree::Neq(std::move(c));
    }
  }
  return expression;
}

RegexPtr NormalizeRegex(const RegexPtr& expression) {
  switch (expression->kind) {
    case RegexKind::kEpsilon:
    case RegexKind::kLetter:
      return expression;
    case RegexKind::kUnion: {
      std::vector<RegexPtr> flat;
      std::vector<std::string> seen;
      for (const RegexPtr& child : expression->children) {
        RegexPtr c = NormalizeRegex(child);
        std::vector<RegexPtr> parts =
            (c->kind == RegexKind::kUnion) ? c->children
                                           : std::vector<RegexPtr>{c};
        for (const RegexPtr& part : parts) {
          std::string key = RegexToString(part);
          if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
            seen.push_back(std::move(key));
            flat.push_back(part);
          }
        }
      }
      return re::Union(std::move(flat));
    }
    case RegexKind::kConcat: {
      std::vector<RegexPtr> flat;
      for (const RegexPtr& child : expression->children) {
        RegexPtr c = NormalizeRegex(child);
        if (c->kind == RegexKind::kEpsilon) {
          continue;
        }
        if (c->kind == RegexKind::kConcat) {
          flat.insert(flat.end(), c->children.begin(), c->children.end());
        } else {
          flat.push_back(c);
        }
      }
      if (flat.empty()) {
        return re::Epsilon();
      }
      return re::Concat(std::move(flat));
    }
    case RegexKind::kStar: {
      RegexPtr c = NormalizeRegex(expression->children[0]);
      if (c->kind == RegexKind::kStar || c->kind == RegexKind::kPlus) {
        return re::Star(c->children[0]);
      }
      if (c->kind == RegexKind::kEpsilon) {
        return c;
      }
      return re::Star(std::move(c));
    }
    case RegexKind::kPlus: {
      RegexPtr c = NormalizeRegex(expression->children[0]);
      if (c->kind == RegexKind::kPlus) {
        return c;
      }
      if (c->kind == RegexKind::kEpsilon) {
        return c;
      }
      if (c->kind == RegexKind::kStar) {
        return c;  // (e*)⁺ = e*
      }
      return re::Plus(std::move(c));
    }
  }
  return expression;
}

namespace {

/// Decomposes e as base^count (count maximal). Concat children must all be
/// structurally equal (compared by printed form).
template <typename Ptr, typename KindT, KindT kConcatKind,
          std::string (*Print)(const Ptr&)>
std::pair<Ptr, std::size_t> SplitPower(const Ptr& e) {
  if (e->kind != kConcatKind || e->children.empty()) {
    return {e, 1};
  }
  std::string first = Print(e->children[0]);
  for (std::size_t i = 1; i < e->children.size(); i++) {
    if (Print(e->children[i]) != first) {
      return {e, 1};
    }
  }
  return {e->children[0], e->children.size()};
}

/// The wrapper shape of an REE branch for power grouping.
enum class Wrapper { kNone, kEq, kNeq };

struct ReeBranchShape {
  Wrapper wrapper;
  ReePtr base;
  std::size_t power;
};

ReeBranchShape AnalyzeReeBranch(const ReePtr& branch) {
  ReePtr inner = branch;
  Wrapper wrapper = Wrapper::kNone;
  if (branch->kind == ReeKind::kEq) {
    wrapper = Wrapper::kEq;
    inner = branch->children[0];
  } else if (branch->kind == ReeKind::kNeq) {
    wrapper = Wrapper::kNeq;
    inner = branch->children[0];
  }
  auto [base, power] =
      SplitPower<ReePtr, ReeKind, ReeKind::kConcat, ReeToString>(inner);
  return {wrapper, base, power};
}

ReePtr RebuildReeBranch(Wrapper wrapper, ReePtr body) {
  switch (wrapper) {
    case Wrapper::kNone:
      return body;
    case Wrapper::kEq:
      return ree::Eq(std::move(body));
    case Wrapper::kNeq:
      return ree::Neq(std::move(body));
  }
  return body;
}

}  // namespace

Result<ReePtr> SimplifyReeOnGraph(const DataGraph& graph,
                                  const ReePtr& expression,
                                  const BinaryRelation& relation) {
  ReePtr normalized = NormalizeRee(expression);
  if (!(EvaluateRee(graph, normalized) == relation)) {
    return Status::Internal(
        "normalization changed the evaluation — please report this bug");
  }
  // Group union branches by (wrapper, base) and propose wrapper(base⁺) for
  // any group with more than one power (or a single power > 1).
  std::vector<ReePtr> branches =
      (normalized->kind == ReeKind::kUnion) ? normalized->children
                                            : std::vector<ReePtr>{normalized};
  struct Group {
    Wrapper wrapper;
    ReePtr base;
    std::vector<std::size_t> branch_indices;
    std::size_t distinct_powers = 0;
    std::size_t max_power = 0;
  };
  std::map<std::pair<int, std::string>, Group> groups;
  std::vector<ReeBranchShape> shapes;
  for (std::size_t i = 0; i < branches.size(); i++) {
    ReeBranchShape shape = AnalyzeReeBranch(branches[i]);
    shapes.push_back(shape);
    auto key = std::make_pair(static_cast<int>(shape.wrapper),
                              ReeToString(shape.base));
    Group& group = groups.try_emplace(key, Group{shape.wrapper, shape.base,
                                                 {}, 0, 0})
                       .first->second;
    group.branch_indices.push_back(i);
    group.max_power = std::max(group.max_power, shape.power);
  }

  ReePtr best = normalized;
  std::size_t best_size = ReeToString(best).size();
  // Greedily try generalizing each group; keep a rewrite when it verifies
  // and shortens the query.
  for (auto& [key, group] : groups) {
    if (group.branch_indices.size() < 2 && group.max_power < 2) {
      continue;
    }
    std::vector<ReePtr> candidate_branches;
    bool replaced = false;
    for (std::size_t i = 0; i < branches.size(); i++) {
      bool in_group =
          std::find(group.branch_indices.begin(), group.branch_indices.end(),
                    i) != group.branch_indices.end();
      if (!in_group) {
        candidate_branches.push_back(branches[i]);
      } else if (!replaced) {
        candidate_branches.push_back(
            RebuildReeBranch(group.wrapper, ree::Plus(group.base)));
        replaced = true;
      }
    }
    ReePtr candidate = ree::Union(std::move(candidate_branches));
    if (EvaluateRee(graph, candidate) == relation &&
        ReeToString(candidate).size() < best_size) {
      // Restart the greedy pass on the rewritten query (group indices
      // refer to the pre-rewrite branch list; queries are small, so the
      // simple restart policy is fine). Terminates: size decreases.
      return SimplifyReeOnGraph(graph, candidate, relation);
    }
  }
  return best;
}

Result<RegexPtr> SimplifyRegexOnGraph(const DataGraph& graph,
                                      const RegexPtr& expression,
                                      const BinaryRelation& relation) {
  RegexPtr normalized = NormalizeRegex(expression);
  if (!(EvaluateRpq(graph, normalized) == relation)) {
    return Status::Internal(
        "normalization changed the evaluation — please report this bug");
  }
  std::vector<RegexPtr> branches =
      (normalized->kind == RegexKind::kUnion)
          ? normalized->children
          : std::vector<RegexPtr>{normalized};
  std::map<std::string, std::vector<std::size_t>> groups;
  std::vector<std::pair<RegexPtr, std::size_t>> shapes;
  for (std::size_t i = 0; i < branches.size(); i++) {
    auto shape =
        SplitPower<RegexPtr, RegexKind, RegexKind::kConcat, RegexToString>(
            branches[i]);
    shapes.push_back(shape);
    groups[RegexToString(shape.first)].push_back(i);
  }
  RegexPtr best = normalized;
  std::size_t best_size = RegexToString(best).size();
  for (const auto& [base_key, indices] : groups) {
    std::size_t max_power = 0;
    for (std::size_t i : indices) {
      max_power = std::max(max_power, shapes[i].second);
    }
    if (indices.size() < 2 && max_power < 2) {
      continue;
    }
    std::vector<RegexPtr> candidate_branches;
    bool replaced = false;
    for (std::size_t i = 0; i < branches.size(); i++) {
      bool in_group = std::find(indices.begin(), indices.end(), i) !=
                      indices.end();
      if (!in_group) {
        candidate_branches.push_back(branches[i]);
      } else if (!replaced) {
        candidate_branches.push_back(re::Plus(shapes[indices[0]].first));
        replaced = true;
      }
    }
    RegexPtr candidate = re::Union(std::move(candidate_branches));
    if (EvaluateRpq(graph, candidate) == relation &&
        RegexToString(candidate).size() < best_size) {
      return SimplifyRegexOnGraph(graph, candidate, relation);
    }
  }
  return best;
}

}  // namespace gqd
