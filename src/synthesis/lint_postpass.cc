#include "synthesis/lint_postpass.h"

#include <string>

#include "analysis/pass_manager.h"
#include "rem/parser.h"

namespace gqd {

namespace {

Result<std::vector<Diagnostic>> Postpass(std::vector<Diagnostic> diagnostics,
                                         bool empty_target,
                                         const std::string& what) {
  if (!empty_target && HasErrors(diagnostics)) {
    std::vector<Diagnostic> errors;
    for (const Diagnostic& d : diagnostics) {
      if (d.severity == DiagnosticSeverity::kError) {
        errors.push_back(d);
      }
    }
    return Status::Internal(
        "synthesized " + what +
        " has error-level lint findings (synthesis bug):\n" +
        DiagnosticsToText(errors));
  }
  return diagnostics;
}

}  // namespace

Result<std::vector<Diagnostic>> LintSynthesizedRem(
    const DataGraph& graph, const BinaryRelation& relation,
    const RemPtr& query) {
  AnalysisOptions options;
  options.graph = &graph;
  // Synthesized nodes carry no parser offsets; lint the canonical print
  // instead (round-tripping through the parser re-anchors every node) so
  // findings resolve to line:column positions in the text we report.
  std::string printed = RemToString(query);
  RemPtr linted = query;
  if (Result<RemPtr> reparsed = ParseRem(printed); reparsed.ok()) {
    linted = reparsed.value();
  }
  std::vector<Diagnostic> diagnostics = LintRem(linted, options);
  ResolveDiagnosticLocations(printed, &diagnostics);
  return Postpass(std::move(diagnostics), relation.Empty(), "REM");
}

Result<std::vector<Diagnostic>> LintSynthesizedRee(
    const DataGraph& graph, const BinaryRelation& relation,
    const ReePtr& query) {
  AnalysisOptions options;
  options.graph = &graph;
  return Postpass(LintRee(query, options), relation.Empty(), "REE");
}

Result<std::vector<Diagnostic>> LintSynthesizedRegex(
    const DataGraph& graph, const BinaryRelation& relation,
    const RegexPtr& query) {
  AnalysisOptions options;
  options.graph = &graph;
  return Postpass(LintRegex(query, options), relation.Empty(), "regex");
}

}  // namespace gqd
