// Defining-query synthesis (Discussion, Section 6 of the paper).
//
// The decision procedures are constructive: each "definable" verdict
// carries witnesses from which a defining query can be assembled. This
// module packages them behind one API, returning queries that are
// guaranteed (and test-verified) to evaluate back to exactly S:
//   * RPQ:      union of witness words (or a killing word for S = ∅);
//   * RDPQ_mem: union of basic k-REM witnesses (Lemma 18);
//   * RDPQ_=:   union of monoid derivations covering S (Lemma 30);
//   * UCRDPQ:   the canonical φ_G query of Lemma 34 — one CRDPQ per tuple
//               of S, each with a variable per node, an atom per edge, and
//               (Σ⁺)=/(Σ⁺)≠ atoms per reachable node pair.
//
// As the paper notes, these synthesized queries are star-free and can be
// worst-case huge (doubly exponential for REM); the E8 bench measures that
// growth. They are *correct*, not pretty.

#ifndef GQD_SYNTHESIS_SYNTHESIS_H_
#define GQD_SYNTHESIS_SYNTHESIS_H_

#include <optional>

#include "common/status.h"
#include "definability/krem_definability.h"
#include "definability/ree_definability.h"
#include "definability/rpq_definability.h"
#include "eval/query.h"
#include "graph/data_graph.h"
#include "graph/relation.h"

namespace gqd {

/// Synthesizes a regex Q with Q(G) = S, or nullopt if S is not
/// RPQ-definable (budget exhaustion surfaces as ResourceExhausted).
Result<std::optional<RegexPtr>> SynthesizeRpqQuery(
    const DataGraph& graph, const BinaryRelation& relation,
    const KRemDefinabilityOptions& options = {});

/// Synthesizes a k-register REM Q with Q(G) = S, or nullopt.
Result<std::optional<RemPtr>> SynthesizeKRemQuery(
    const DataGraph& graph, const BinaryRelation& relation, std::size_t k,
    const KRemDefinabilityOptions& options = {});

/// Synthesizes an REE Q with Q(G) = S, or nullopt.
Result<std::optional<ReePtr>> SynthesizeReeQuery(
    const DataGraph& graph, const BinaryRelation& relation,
    const ReeDefinabilityOptions& options = {});

/// The canonical UCRDPQ of Lemma 34 for any-arity S. This query defines S
/// whenever S is UCRDPQ-definable at all (and otherwise defines the closure
/// of S under data-graph homomorphisms); callers wanting a definability
/// guarantee should check CheckUcrdpqDefinability first.
Result<Ucrdpq> SynthesizeCanonicalUcrdpq(const DataGraph& graph,
                                         const TupleRelation& relation);

}  // namespace gqd

#endif  // GQD_SYNTHESIS_SYNTHESIS_H_
