// Lint post-pass over synthesized defining queries.
//
// Synthesized queries are correct by construction (round-trip verified
// through the evaluators), but §6 of the paper notes they "do not have an
// interesting structure" — and a synthesis bug would typically manifest as
// dead structure: an unsatisfiable condition, an empty-language branch, a
// letter outside Σ. The post-pass runs the lint pass manager on every
// synthesized query and treats error-level findings as an Internal error
// (a bug in the synthesizer), with one deliberate exception: when the
// target relation is empty, an empty-language query (ε[¬⊤] for REM,
// (ε)≠ for REE, a killing word for RPQ) is the *correct* output, so
// emptiness-class errors are expected and accepted.
//
// Warning/note findings are returned to the caller — they record which
// redundancies graph-relative simplification (synthesis/simplify.h) is
// expected to remove.

#ifndef GQD_SYNTHESIS_LINT_POSTPASS_H_
#define GQD_SYNTHESIS_LINT_POSTPASS_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "regex/ast.h"
#include "rem/ast.h"
#include "ree/ast.h"

namespace gqd {

/// Lints a synthesized query for `relation` on `graph`. Internal error when
/// error-level findings survive (and the relation is non-empty); otherwise
/// returns the warning/note diagnostics.
Result<std::vector<Diagnostic>> LintSynthesizedRem(
    const DataGraph& graph, const BinaryRelation& relation,
    const RemPtr& query);
Result<std::vector<Diagnostic>> LintSynthesizedRee(
    const DataGraph& graph, const BinaryRelation& relation,
    const ReePtr& query);
Result<std::vector<Diagnostic>> LintSynthesizedRegex(
    const DataGraph& graph, const BinaryRelation& relation,
    const RegexPtr& query);

}  // namespace gqd

#endif  // GQD_SYNTHESIS_LINT_POSTPASS_H_
