// Umbrella header: the whole gqd public API in one include.
//
//   #include "gqd.h"
//
// Fine-grained headers remain the preferred include style inside the
// library itself; this header exists for downstream convenience.

#ifndef GQD_GQD_H_
#define GQD_GQD_H_

// Common substrate.
#include "common/bitset.h"     // IWYU pragma: export
#include "common/budget.h"     // IWYU pragma: export
#include "common/cancel.h"     // IWYU pragma: export
#include "common/failpoint.h"  // IWYU pragma: export
#include "common/interner.h"   // IWYU pragma: export
#include "common/json_util.h"  // IWYU pragma: export
#include "common/status.h"     // IWYU pragma: export

// Observability: span tracing and metrics.
#include "obs/export.h"         // IWYU pragma: export
#include "obs/log.h"            // IWYU pragma: export
#include "obs/metrics.h"        // IWYU pragma: export
#include "obs/trace.h"          // IWYU pragma: export
#include "obs/trace_context.h"  // IWYU pragma: export

// Data graphs and relations.
#include "graph/data_graph.h"     // IWYU pragma: export
#include "graph/data_path.h"      // IWYU pragma: export
#include "graph/examples.h"       // IWYU pragma: export
#include "graph/generators.h"     // IWYU pragma: export
#include "graph/relation.h"         // IWYU pragma: export
#include "graph/serialization.h"    // IWYU pragma: export
#include "graph/sparse_relation.h"  // IWYU pragma: export

// Storage: binary graph containers served zero-copy via mmap.
#include "storage/container.h"    // IWYU pragma: export
#include "storage/format.h"       // IWYU pragma: export
#include "storage/graph_store.h"  // IWYU pragma: export
#include "storage/metrics.h"         // IWYU pragma: export
#include "storage/mmap_file.h"       // IWYU pragma: export
#include "storage/relation_store.h"  // IWYU pragma: export

// Expression families.
#include "regex/ast.h"     // IWYU pragma: export
#include "regex/nfa.h"     // IWYU pragma: export
#include "regex/parser.h"  // IWYU pragma: export
#include "rem/ast.h"                 // IWYU pragma: export
#include "rem/condition.h"           // IWYU pragma: export
#include "rem/naive_semantics.h"     // IWYU pragma: export
#include "rem/parser.h"              // IWYU pragma: export
#include "rem/register_automaton.h"  // IWYU pragma: export
#include "ree/ast.h"         // IWYU pragma: export
#include "ree/membership.h"  // IWYU pragma: export
#include "ree/parser.h"      // IWYU pragma: export

// Static analysis (query linting).
#include "analysis/condition_analysis.h"  // IWYU pragma: export
#include "analysis/diagnostic.h"          // IWYU pragma: export
#include "analysis/graph_checks.h"        // IWYU pragma: export
#include "analysis/hygiene.h"             // IWYU pragma: export
#include "analysis/lint_suite.h"          // IWYU pragma: export
#include "analysis/pass_manager.h"        // IWYU pragma: export
#include "analysis/register_dataflow.h"   // IWYU pragma: export

// Static analysis (query planning: automaton pruning + kernel dispatch).
#include "analysis/plan/automaton_analysis.h"  // IWYU pragma: export
#include "analysis/plan/kernel_class.h"        // IWYU pragma: export
#include "analysis/plan/kernel_dispatch.h"     // IWYU pragma: export
#include "analysis/plan/plan_metrics.h"        // IWYU pragma: export
#include "analysis/plan/query_plan.h"          // IWYU pragma: export

// Evaluation.
#include "eval/convert.h"       // IWYU pragma: export
#include "eval/eval_options.h"  // IWYU pragma: export
#include "eval/preflight.h" // IWYU pragma: export
#include "eval/explain.h"   // IWYU pragma: export
#include "eval/query.h"     // IWYU pragma: export
#include "eval/rem_eval.h"  // IWYU pragma: export
#include "eval/ree_eval.h"  // IWYU pragma: export
#include "eval/rpq_eval.h"  // IWYU pragma: export

// Homomorphisms and definability.
#include "homomorphism/csp.h"             // IWYU pragma: export
#include "homomorphism/data_graph_hom.h"  // IWYU pragma: export
#include "definability/assignment_graph.h"     // IWYU pragma: export
#include "definability/krem_definability.h"    // IWYU pragma: export
#include "definability/ree_definability.h"     // IWYU pragma: export
#include "definability/rem_via_rpq.h"          // IWYU pragma: export
#include "definability/rpq_definability.h"     // IWYU pragma: export
#include "definability/ucrdpq_definability.h"  // IWYU pragma: export
#include "definability/verdict.h"              // IWYU pragma: export

// Lower-bound constructions.
#include "reductions/cnf.h"               // IWYU pragma: export
#include "reductions/sat_reduction.h"     // IWYU pragma: export
#include "reductions/theorem32.h"         // IWYU pragma: export
#include "reductions/tiling.h"            // IWYU pragma: export
#include "reductions/tiling_reduction.h"  // IWYU pragma: export

// Synthesis.
#include "synthesis/lint_postpass.h"  // IWYU pragma: export
#include "synthesis/simplify.h"       // IWYU pragma: export
#include "synthesis/synthesis.h"      // IWYU pragma: export

// Serving runtime (gqd serve).
#include "runtime/admission.h"       // IWYU pragma: export
#include "runtime/client.h"          // IWYU pragma: export
#include "runtime/graph_registry.h"  // IWYU pragma: export
#include "runtime/json.h"            // IWYU pragma: export
#include "runtime/line_handler.h"    // IWYU pragma: export
#include "runtime/result_cache.h"    // IWYU pragma: export
#include "runtime/server.h"          // IWYU pragma: export
#include "runtime/service.h"         // IWYU pragma: export
#include "runtime/stats.h"           // IWYU pragma: export
#include "common/thread_pool.h"      // IWYU pragma: export

// Cluster serving (gqd route).
#include "cluster/hash_ring.h"    // IWYU pragma: export
#include "cluster/router.h"       // IWYU pragma: export
#include "cluster/worker_link.h"  // IWYU pragma: export

#endif  // GQD_GQD_H_
