// Data-path membership for REE (the language semantics of Definition 7).

#ifndef GQD_REE_MEMBERSHIP_H_
#define GQD_REE_MEMBERSHIP_H_

#include "common/interner.h"
#include "graph/data_path.h"
#include "ree/ast.h"

namespace gqd {

/// Does `path` belong to L(expression)?
///
/// Bottom-up dynamic programming: for every AST node, a boolean matrix over
/// (start position, end position) of the path; e⁺ is the transitive closure
/// of e's matrix. O(|e| · m³) worst case for a path with m letters.
/// Letters resolve by name via `labels` (letters unknown to the interner
/// match nothing).
bool ReeMatches(const ReePtr& expression, const DataPath& path,
                const StringInterner& labels);

}  // namespace gqd

#endif  // GQD_REE_MEMBERSHIP_H_
