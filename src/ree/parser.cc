#include "ree/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace gqd {

namespace {

enum class TokenKind {
  kIdent,
  kPipe,
  kStar,
  kPlus,
  kDot,
  kEq,
  kNeq,
  kLParen,
  kRParen,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t position;
};

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  std::size_t pos = 0;
  auto error = [&](std::size_t at, const std::string& msg) {
    return Status::InvalidArgument("REE at offset " + std::to_string(at) +
                                   ": " + msg);
  };
  while (pos < text.size()) {
    char c = text[pos];
    if (std::isspace(static_cast<unsigned char>(c))) {
      pos++;
      continue;
    }
    std::size_t start = pos;
    auto single = [&](TokenKind kind) {
      tokens.push_back({kind, "", start});
      pos++;
    };
    switch (c) {
      case '|': single(TokenKind::kPipe); continue;
      case '*': single(TokenKind::kStar); continue;
      case '+': single(TokenKind::kPlus); continue;
      case '.': single(TokenKind::kDot); continue;
      case '=': single(TokenKind::kEq); continue;
      case '(': single(TokenKind::kLParen); continue;
      case ')': single(TokenKind::kRParen); continue;
      case '!':
        if (pos + 1 < text.size() && text[pos + 1] == '=') {
          tokens.push_back({TokenKind::kNeq, "", start});
          pos += 2;
          continue;
        }
        return error(start, "expected '=' after '!'");
      case '\'': {
        pos++;
        std::string name;
        while (pos < text.size() && text[pos] != '\'') {
          name += text[pos++];
        }
        if (pos >= text.size()) {
          return error(start, "unterminated quoted label");
        }
        pos++;
        if (name.empty()) {
          return error(start, "empty quoted label");
        }
        tokens.push_back({TokenKind::kIdent, std::move(name), start});
        continue;
      }
      default:
        break;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      std::string name;
      while (pos < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[pos])) ||
              text[pos] == '_')) {
        name += text[pos++];
      }
      tokens.push_back({TokenKind::kIdent, std::move(name), start});
      continue;
    }
    return error(start, std::string("unexpected character '") + c + "'");
  }
  tokens.push_back({TokenKind::kEnd, "", text.size()});
  return tokens;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ReePtr> Run() {
    GQD_ASSIGN_OR_RETURN(ReePtr result, ParseUnion());
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input");
    }
    return result;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  void Advance() { index_++; }

  Status Error(const std::string& msg) {
    return Status::InvalidArgument("REE at offset " +
                                   std::to_string(Peek().position) + ": " +
                                   msg);
  }

  Result<ReePtr> ParseUnion() {
    GQD_ASSIGN_OR_RETURN(ReePtr first, ParseConcat());
    std::vector<ReePtr> operands = {first};
    while (Peek().kind == TokenKind::kPipe) {
      Advance();
      GQD_ASSIGN_OR_RETURN(ReePtr next, ParseConcat());
      operands.push_back(next);
    }
    return ree::Union(std::move(operands));
  }

  Result<ReePtr> ParseConcat() {
    GQD_ASSIGN_OR_RETURN(ReePtr first, ParsePostfix());
    std::vector<ReePtr> operands = {first};
    while (true) {
      TokenKind k = Peek().kind;
      if (k == TokenKind::kDot) {
        Advance();
        GQD_ASSIGN_OR_RETURN(ReePtr next, ParsePostfix());
        operands.push_back(next);
      } else if (k == TokenKind::kIdent || k == TokenKind::kLParen) {
        GQD_ASSIGN_OR_RETURN(ReePtr next, ParsePostfix());
        operands.push_back(next);
      } else {
        break;
      }
    }
    return ree::Concat(std::move(operands));
  }

  Result<ReePtr> ParsePostfix() {
    GQD_ASSIGN_OR_RETURN(ReePtr node, ParseAtom());
    while (true) {
      TokenKind k = Peek().kind;
      if (k == TokenKind::kStar) {
        Advance();
        node = ree::Star(node);
      } else if (k == TokenKind::kPlus) {
        Advance();
        node = ree::Plus(node);
      } else if (k == TokenKind::kEq) {
        Advance();
        node = ree::Eq(node);
      } else if (k == TokenKind::kNeq) {
        Advance();
        node = ree::Neq(node);
      } else {
        break;
      }
    }
    return node;
  }

  Result<ReePtr> ParseAtom() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIdent: {
        std::string name = token.text;
        Advance();
        if (name == "eps") {
          return ree::Epsilon();
        }
        return ree::Letter(std::move(name));
      }
      case TokenKind::kLParen: {
        Advance();
        GQD_ASSIGN_OR_RETURN(ReePtr inner, ParseUnion());
        if (Peek().kind != TokenKind::kRParen) {
          return Error("expected ')'");
        }
        Advance();
        return inner;
      }
      default:
        return Error("expected a letter, 'eps' or '('");
    }
  }

  std::vector<Token> tokens_;
  std::size_t index_ = 0;
};

}  // namespace

Result<ReePtr> ParseRee(std::string_view text) {
  GQD_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace gqd
