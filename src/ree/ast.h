// Regular expressions with equality — REE (Definition 7 of the paper).
//
//   e := ε | a | e + e | e · e | e⁺ | e= | e≠
//
// e= keeps only the data paths of e whose first and last data values are
// equal; e≠ keeps those whose first and last differ.
//
// Concrete syntax accepted by the parser (ree/parser.h):
//   union      e | f
//   concat     e f      (juxtaposition; also `e . f`)
//   plus       e+       (postfix)
//   star       e*       (sugar: eps | e+)
//   eq         e=       (postfix)
//   neq        e!=      (postfix)
//   epsilon    eps
//   letters    identifiers or quoted '...'
//
// Example 8 of the paper: `((a)!= (b)!=)!=`.

#ifndef GQD_REE_AST_H_
#define GQD_REE_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace gqd {

enum class ReeKind {
  kEpsilon,
  kLetter,
  kUnion,
  kConcat,
  kPlus,
  kEq,   ///< e=
  kNeq,  ///< e≠
};

struct ReeNode;
using ReePtr = std::shared_ptr<const ReeNode>;

/// Immutable REE AST node.
struct ReeNode {
  ReeKind kind;
  std::string letter;
  std::vector<ReePtr> children;
};

namespace ree {

ReePtr Epsilon();
ReePtr Letter(std::string name);
ReePtr Union(std::vector<ReePtr> operands);
ReePtr Concat(std::vector<ReePtr> operands);
ReePtr Plus(ReePtr operand);
/// e* desugared as eps | e+.
ReePtr Star(ReePtr operand);
ReePtr Eq(ReePtr operand);
ReePtr Neq(ReePtr operand);

}  // namespace ree

/// Renders the concrete syntax.
std::string ReeToString(const ReePtr& expression);

}  // namespace gqd

#endif  // GQD_REE_AST_H_
