#include "ree/ast.h"

#include <cassert>
#include <sstream>

#include "common/syntax.h"

namespace gqd {

namespace ree {

ReePtr Epsilon() {
  auto node = std::make_shared<ReeNode>();
  node->kind = ReeKind::kEpsilon;
  return node;
}

ReePtr Letter(std::string name) {
  auto node = std::make_shared<ReeNode>();
  node->kind = ReeKind::kLetter;
  node->letter = std::move(name);
  return node;
}

ReePtr Union(std::vector<ReePtr> operands) {
  assert(!operands.empty());
  if (operands.size() == 1) {
    return operands[0];
  }
  auto node = std::make_shared<ReeNode>();
  node->kind = ReeKind::kUnion;
  node->children = std::move(operands);
  return node;
}

ReePtr Concat(std::vector<ReePtr> operands) {
  if (operands.empty()) {
    return Epsilon();
  }
  if (operands.size() == 1) {
    return operands[0];
  }
  auto node = std::make_shared<ReeNode>();
  node->kind = ReeKind::kConcat;
  node->children = std::move(operands);
  return node;
}

ReePtr Plus(ReePtr operand) {
  auto node = std::make_shared<ReeNode>();
  node->kind = ReeKind::kPlus;
  node->children = {std::move(operand)};
  return node;
}

ReePtr Star(ReePtr operand) {
  return Union({Epsilon(), Plus(std::move(operand))});
}

ReePtr Eq(ReePtr operand) {
  auto node = std::make_shared<ReeNode>();
  node->kind = ReeKind::kEq;
  node->children = {std::move(operand)};
  return node;
}

ReePtr Neq(ReePtr operand) {
  auto node = std::make_shared<ReeNode>();
  node->kind = ReeKind::kNeq;
  node->children = {std::move(operand)};
  return node;
}

}  // namespace ree

namespace {

// Precedence: union (1) < concat (2) < postfix (3) < atoms (4).
int Precedence(ReeKind kind) {
  switch (kind) {
    case ReeKind::kUnion:
      return 1;
    case ReeKind::kConcat:
      return 2;
    case ReeKind::kEpsilon:
    case ReeKind::kLetter:
      return 4;
    default:
      return 3;
  }
}

void Render(const ReePtr& node, int parent_precedence, std::ostream& os) {
  int self = Precedence(node->kind);
  bool parens = self < parent_precedence;
  if (parens) {
    os << "(";
  }
  switch (node->kind) {
    case ReeKind::kEpsilon:
      os << "eps";
      break;
    case ReeKind::kLetter:
      RenderLabelName(node->letter, os);
      break;
    case ReeKind::kUnion:
      for (std::size_t i = 0; i < node->children.size(); i++) {
        if (i > 0) {
          os << " | ";
        }
        Render(node->children[i], self, os);
      }
      break;
    case ReeKind::kConcat:
      for (std::size_t i = 0; i < node->children.size(); i++) {
        if (i > 0) {
          os << " ";
        }
        Render(node->children[i], self, os);
      }
      break;
    case ReeKind::kPlus:
      Render(node->children[0], 4, os);
      os << "+";
      break;
    case ReeKind::kEq:
      Render(node->children[0], 4, os);
      os << "=";
      break;
    case ReeKind::kNeq:
      Render(node->children[0], 4, os);
      os << "!=";
      break;
  }
  if (parens) {
    os << ")";
  }
}

}  // namespace

std::string ReeToString(const ReePtr& expression) {
  std::ostringstream os;
  Render(expression, 0, os);
  return os.str();
}

}  // namespace gqd
