// Parser for REE concrete syntax (documented in ree/ast.h).

#ifndef GQD_REE_PARSER_H_
#define GQD_REE_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "ree/ast.h"

namespace gqd {

/// Parses an REE. Returns InvalidArgument with offsets on bad input.
Result<ReePtr> ParseRee(std::string_view text);

}  // namespace gqd

#endif  // GQD_REE_PARSER_H_
