#include "ree/membership.h"

#include <cassert>
#include <vector>

namespace gqd {

namespace {

/// Square boolean matrix over path positions 0..m.
class PositionMatrix {
 public:
  explicit PositionMatrix(std::size_t size)
      : size_(size), bits_(size * size, false) {}

  bool Get(std::size_t i, std::size_t j) const { return bits_[i * size_ + j]; }
  void Set(std::size_t i, std::size_t j) { bits_[i * size_ + j] = true; }
  std::size_t size() const { return size_; }

 private:
  std::size_t size_;
  std::vector<bool> bits_;
};

PositionMatrix Evaluate(const ReePtr& node, const DataPath& path,
                        const StringInterner& labels) {
  std::size_t positions = path.values.size();
  PositionMatrix out(positions);
  switch (node->kind) {
    case ReeKind::kEpsilon:
      for (std::size_t i = 0; i < positions; i++) {
        out.Set(i, i);
      }
      break;
    case ReeKind::kLetter: {
      auto id = labels.Find(node->letter);
      if (!id.has_value()) {
        break;
      }
      for (std::size_t i = 0; i + 1 < positions; i++) {
        if (path.letters[i] == *id) {
          out.Set(i, i + 1);
        }
      }
      break;
    }
    case ReeKind::kUnion:
      for (const ReePtr& child : node->children) {
        PositionMatrix m = Evaluate(child, path, labels);
        for (std::size_t i = 0; i < positions; i++) {
          for (std::size_t j = 0; j < positions; j++) {
            if (m.Get(i, j)) {
              out.Set(i, j);
            }
          }
        }
      }
      break;
    case ReeKind::kConcat: {
      assert(!node->children.empty());
      out = Evaluate(node->children[0], path, labels);
      for (std::size_t c = 1; c < node->children.size(); c++) {
        PositionMatrix rhs = Evaluate(node->children[c], path, labels);
        PositionMatrix next(positions);
        for (std::size_t i = 0; i < positions; i++) {
          for (std::size_t k = 0; k < positions; k++) {
            if (!out.Get(i, k)) {
              continue;
            }
            for (std::size_t j = 0; j < positions; j++) {
              if (rhs.Get(k, j)) {
                next.Set(i, j);
              }
            }
          }
        }
        out = next;
      }
      break;
    }
    case ReeKind::kPlus: {
      PositionMatrix base = Evaluate(node->children[0], path, labels);
      // Transitive closure (Floyd–Warshall style).
      out = base;
      for (std::size_t k = 0; k < positions; k++) {
        for (std::size_t i = 0; i < positions; i++) {
          if (!out.Get(i, k)) {
            continue;
          }
          for (std::size_t j = 0; j < positions; j++) {
            if (out.Get(k, j)) {
              out.Set(i, j);
            }
          }
        }
      }
      break;
    }
    case ReeKind::kEq: {
      PositionMatrix m = Evaluate(node->children[0], path, labels);
      for (std::size_t i = 0; i < positions; i++) {
        for (std::size_t j = 0; j < positions; j++) {
          if (m.Get(i, j) && path.values[i] == path.values[j]) {
            out.Set(i, j);
          }
        }
      }
      break;
    }
    case ReeKind::kNeq: {
      PositionMatrix m = Evaluate(node->children[0], path, labels);
      for (std::size_t i = 0; i < positions; i++) {
        for (std::size_t j = 0; j < positions; j++) {
          if (m.Get(i, j) && path.values[i] != path.values[j]) {
            out.Set(i, j);
          }
        }
      }
      break;
    }
  }
  return out;
}

}  // namespace

bool ReeMatches(const ReePtr& expression, const DataPath& path,
                const StringInterner& labels) {
  PositionMatrix m = Evaluate(expression, path, labels);
  return m.Get(0, path.values.size() - 1);
}

}  // namespace gqd
