// A small binary-CSP engine: backtracking search with AC-3 propagation and
// minimum-remaining-values ordering.
//
// This is the decision procedure behind UCRDPQ-definability (Theorem 35):
// finding a data-graph homomorphism is an instance of a binary CSP whose
// variables are the graph's nodes and whose domain is also the node set.
// The engine is generic so tests can exercise it on plain CSPs too.

#ifndef GQD_HOMOMORPHISM_CSP_H_
#define GQD_HOMOMORPHISM_CSP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitset.h"
#include "common/budget.h"
#include "common/cancel.h"
#include "common/status.h"

namespace gqd {

/// A binary constraint between two variables: the set of allowed value
/// pairs, stored row-major (allowed[x * domain + y]).
struct BinaryConstraint {
  std::size_t var_a;
  std::size_t var_b;
  DynamicBitset allowed;  ///< size = domain_size², bit (a_val*D + b_val).

  bool Allows(std::uint32_t a_value, std::uint32_t b_value,
              std::size_t domain_size) const {
    return allowed.Test(a_value * domain_size + b_value);
  }
};

/// A binary CSP over `num_variables` variables sharing one value domain.
struct Csp {
  std::size_t num_variables = 0;
  std::size_t domain_size = 0;
  /// Initial per-variable domains (callers may pre-restrict, e.g. seeds).
  std::vector<DynamicBitset> domains;
  std::vector<BinaryConstraint> constraints;

  /// Creates a CSP with full domains.
  static Csp Full(std::size_t num_variables, std::size_t domain_size);

  /// Adds a constraint; `allowed` must have domain_size² bits.
  void AddConstraint(std::size_t var_a, std::size_t var_b,
                     DynamicBitset allowed);

  /// Restricts variable `var` to exactly `value`.
  void Pin(std::size_t var, std::uint32_t value);
};

/// Search statistics (exposed for the E9 ablation bench).
struct CspStats {
  std::size_t nodes_expanded = 0;   ///< backtracking tree nodes visited
  std::size_t propagations = 0;     ///< AC-3 arc revisions
};

/// Options controlling the solver.
struct CspOptions {
  bool use_ac3 = true;             ///< propagate with AC-3 at every node
  std::size_t max_nodes = 10'000'000;  ///< search budget
  /// Optional cooperative cancellation: the backtracking search polls this
  /// token and returns Status::DeadlineExceeded once it expires.
  const CancelToken* cancel = nullptr;
  /// Optional resource governance: each expanded node charges one tuple and
  /// the search polls for exhaustion (CSP memory is bounded by search
  /// depth, so only the tuple and wall-clock axes apply here).
  const ResourceBudget* budget = nullptr;
};

/// Finds one solution, or nullopt if none (or OutOfRange if the node budget
/// is exhausted — reported via Status to distinguish "no" from "gave up").
Result<std::optional<std::vector<std::uint32_t>>> SolveCsp(
    const Csp& csp, const CspOptions& options = {}, CspStats* stats = nullptr);

/// Enumerates all solutions (tests/oracles only; exponential).
Result<std::vector<std::vector<std::uint32_t>>> EnumerateCspSolutions(
    const Csp& csp, std::size_t max_solutions = 1'000'000);

}  // namespace gqd

#endif  // GQD_HOMOMORPHISM_CSP_H_
