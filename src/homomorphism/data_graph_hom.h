// Data-graph homomorphisms (Definition 33 of the paper).
//
// h : V → V is a data-graph homomorphism when
//   (1) every edge (p, a, q) maps to an edge (h(p), a, h(q)), and
//   (2) for every reachable pair p →* q:  ρ(p) = ρ(q)  ⟺  ρ(h(p)) = ρ(h(q)).
//
// The search for homomorphisms is encoded as a binary CSP (homomorphism/
// csp.h): one variable per node, domain = nodes, a constraint per node pair
// that has an edge or a reachability relation between them.

#ifndef GQD_HOMOMORPHISM_DATA_GRAPH_HOM_H_
#define GQD_HOMOMORPHISM_DATA_GRAPH_HOM_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/relation.h"
#include "homomorphism/csp.h"

namespace gqd {

/// A candidate node mapping (index = source node, value = image).
using NodeMapping = std::vector<NodeId>;

/// Directly checks Definition 33 for a full mapping (test oracle; O(n²)).
bool IsDataGraphHomomorphism(const DataGraph& graph,
                             const NodeMapping& mapping);

/// Builds the CSP whose solutions are exactly the data-graph homomorphisms
/// of `graph`.
Csp BuildHomomorphismCsp(const DataGraph& graph);

/// Finds any homomorphism satisfying the given pins (h(node) = image).
/// Returns nullopt when none exists.
Result<std::optional<NodeMapping>> FindHomomorphismWithPins(
    const DataGraph& graph,
    const std::vector<std::pair<NodeId, NodeId>>& pins,
    const CspOptions& options = {}, CspStats* stats = nullptr);

/// Enumerates all homomorphisms (tests/oracles; exponential).
Result<std::vector<NodeMapping>> EnumerateHomomorphisms(
    const DataGraph& graph, std::size_t max_solutions = 1'000'000);

/// Reflexive-transitive reachability over all edge labels.
BinaryRelation Reachability(const DataGraph& graph);

}  // namespace gqd

#endif  // GQD_HOMOMORPHISM_DATA_GRAPH_HOM_H_
