#include "homomorphism/csp.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "common/failpoint.h"
#include "obs/trace.h"

namespace gqd {

namespace {
GQD_FAILPOINT_DEFINE(fp_csp_search, "csp.search");
}  // namespace

Csp Csp::Full(std::size_t num_variables, std::size_t domain_size) {
  Csp csp;
  csp.num_variables = num_variables;
  csp.domain_size = domain_size;
  DynamicBitset full(domain_size);
  for (std::size_t v = 0; v < domain_size; v++) {
    full.Set(v);
  }
  csp.domains.assign(num_variables, full);
  return csp;
}

void Csp::AddConstraint(std::size_t var_a, std::size_t var_b,
                        DynamicBitset allowed) {
  assert(allowed.size() == domain_size * domain_size);
  constraints.push_back(BinaryConstraint{var_a, var_b, std::move(allowed)});
}

void Csp::Pin(std::size_t var, std::uint32_t value) {
  DynamicBitset single(domain_size);
  single.Set(value);
  domains[var] &= single;
}

namespace {

/// Per-variable incident constraint indices, for AC-3 arc scheduling.
std::vector<std::vector<std::size_t>> BuildIncidence(const Csp& csp) {
  std::vector<std::vector<std::size_t>> incidence(csp.num_variables);
  for (std::size_t i = 0; i < csp.constraints.size(); i++) {
    incidence[csp.constraints[i].var_a].push_back(i);
    incidence[csp.constraints[i].var_b].push_back(i);
  }
  return incidence;
}

/// Removes from dom(var_a) values with no support in dom(var_b) under
/// `constraint` (oriented as written). Returns true if dom(var_a) changed.
bool Revise(const Csp& csp, const BinaryConstraint& constraint,
            std::vector<DynamicBitset>* domains, CspStats* stats) {
  bool changed = false;
  DynamicBitset& dom_a = (*domains)[constraint.var_a];
  const DynamicBitset& dom_b = (*domains)[constraint.var_b];
  for (std::size_t a = dom_a.FindNext(0); a < csp.domain_size;
       a = dom_a.FindNext(a + 1)) {
    bool supported = false;
    for (std::size_t b = dom_b.FindNext(0); b < csp.domain_size;
         b = dom_b.FindNext(b + 1)) {
      if (constraint.Allows(static_cast<std::uint32_t>(a),
                            static_cast<std::uint32_t>(b),
                            csp.domain_size)) {
        supported = true;
        break;
      }
    }
    if (!supported) {
      dom_a.Reset(a);
      changed = true;
    }
  }
  if (stats != nullptr) {
    stats->propagations++;
  }
  return changed;
}

/// Reverse-oriented Revise: prunes dom(var_b) against dom(var_a).
bool ReviseReverse(const Csp& csp, const BinaryConstraint& constraint,
                   std::vector<DynamicBitset>* domains, CspStats* stats) {
  bool changed = false;
  const DynamicBitset& dom_a = (*domains)[constraint.var_a];
  DynamicBitset& dom_b = (*domains)[constraint.var_b];
  for (std::size_t b = dom_b.FindNext(0); b < csp.domain_size;
       b = dom_b.FindNext(b + 1)) {
    bool supported = false;
    for (std::size_t a = dom_a.FindNext(0); a < csp.domain_size;
         a = dom_a.FindNext(a + 1)) {
      if (constraint.Allows(static_cast<std::uint32_t>(a),
                            static_cast<std::uint32_t>(b),
                            csp.domain_size)) {
        supported = true;
        break;
      }
    }
    if (!supported) {
      dom_b.Reset(b);
      changed = true;
    }
  }
  if (stats != nullptr) {
    stats->propagations++;
  }
  return changed;
}

/// AC-3 to a fixpoint. Returns false if some domain wiped out.
bool Ac3(const Csp& csp,
         const std::vector<std::vector<std::size_t>>& incidence,
         std::vector<DynamicBitset>* domains, CspStats* stats) {
  std::queue<std::size_t> work;
  std::vector<bool> queued(csp.constraints.size(), false);
  for (std::size_t i = 0; i < csp.constraints.size(); i++) {
    work.push(i);
    queued[i] = true;
  }
  while (!work.empty()) {
    std::size_t index = work.front();
    work.pop();
    queued[index] = false;
    const BinaryConstraint& constraint = csp.constraints[index];
    bool changed_a = Revise(csp, constraint, domains, stats);
    bool changed_b = ReviseReverse(csp, constraint, domains, stats);
    if ((*domains)[constraint.var_a].None() ||
        (*domains)[constraint.var_b].None()) {
      return false;
    }
    if (changed_a || changed_b) {
      for (std::size_t var : {constraint.var_a, constraint.var_b}) {
        for (std::size_t other : incidence[var]) {
          if (!queued[other]) {
            work.push(other);
            queued[other] = true;
          }
        }
      }
    }
  }
  return true;
}

/// Checks constraints among singleton domains only (used when AC-3 is off).
bool SingletonsConsistent(const Csp& csp,
                          const std::vector<DynamicBitset>& domains) {
  for (const BinaryConstraint& constraint : csp.constraints) {
    const DynamicBitset& dom_a = domains[constraint.var_a];
    const DynamicBitset& dom_b = domains[constraint.var_b];
    if (dom_a.Count() == 1 && dom_b.Count() == 1) {
      std::uint32_t a = static_cast<std::uint32_t>(dom_a.FindNext(0));
      std::uint32_t b = static_cast<std::uint32_t>(dom_b.FindNext(0));
      if (!constraint.Allows(a, b, csp.domain_size)) {
        return false;
      }
    }
  }
  return true;
}

struct Searcher {
  const Csp& csp;
  const CspOptions& options;
  std::vector<std::vector<std::size_t>> incidence;
  CspStats* stats;
  std::vector<std::vector<std::uint32_t>>* all_solutions = nullptr;
  std::size_t max_solutions = 1;
  bool budget_exhausted = false;
  bool resource_tripped = false;
  bool injected = false;
  bool cancelled = false;
  std::uint32_t cancel_ticks = 0;
  std::uint32_t budget_ticks = 0;

  Searcher(const Csp& c, const CspOptions& o, CspStats* s)
      : csp(c), options(o), incidence(BuildIncidence(c)), stats(s) {}

  /// Returns true when the search should stop (enough solutions found).
  bool Search(std::vector<DynamicBitset> domains) {
    if (GQD_FAILPOINT_FIRED(fp_csp_search)) {
      injected = true;
      return true;
    }
    if (GQD_CANCEL_STRIDE_CHECK(options.cancel, cancel_ticks)) {
      cancelled = true;
      return true;
    }
    if (options.budget != nullptr) {
      options.budget->ChargeTuples(1);
      if (GQD_BUDGET_STRIDE_CHECK(options.budget, budget_ticks)) {
        resource_tripped = true;
        return true;
      }
    }
    if (stats != nullptr) {
      if (++stats->nodes_expanded > options.max_nodes) {
        budget_exhausted = true;
        return true;
      }
    }
    // MRV: smallest non-singleton domain.
    std::size_t best_var = csp.num_variables;
    std::size_t best_size = 0;
    for (std::size_t v = 0; v < csp.num_variables; v++) {
      std::size_t size = domains[v].Count();
      if (size == 0) {
        return false;
      }
      if (size > 1 && (best_var == csp.num_variables || size < best_size)) {
        best_var = v;
        best_size = size;
      }
    }
    if (best_var == csp.num_variables) {
      // All singletons: a candidate solution.
      if (!options.use_ac3 && !SingletonsConsistent(csp, domains)) {
        return false;
      }
      std::vector<std::uint32_t> solution(csp.num_variables);
      for (std::size_t v = 0; v < csp.num_variables; v++) {
        solution[v] = static_cast<std::uint32_t>(domains[v].FindNext(0));
      }
      all_solutions->push_back(std::move(solution));
      return all_solutions->size() >= max_solutions;
    }
    const DynamicBitset values = domains[best_var];
    for (std::size_t value = values.FindNext(0); value < csp.domain_size;
         value = values.FindNext(value + 1)) {
      std::vector<DynamicBitset> child = domains;
      child[best_var].Clear();
      child[best_var].Set(value);
      if (options.use_ac3) {
        if (!Ac3(csp, incidence, &child, stats)) {
          continue;
        }
      } else if (!SingletonsConsistent(csp, child)) {
        continue;
      }
      if (Search(std::move(child))) {
        return true;
      }
    }
    return false;
  }
};

}  // namespace

Result<std::optional<std::vector<std::uint32_t>>> SolveCsp(
    const Csp& csp, const CspOptions& options, CspStats* stats) {
  CspStats local_stats;
  if (stats == nullptr) {
    stats = &local_stats;
  }
  GQD_TRACE_SPAN(span, "csp.solve");
  GQD_TRACE_SPAN_ATTR(span, "variables", csp.domains.size());
  // Stats pointers are often shared across seeds; attribute only this
  // solve's delta to the span.
  std::size_t nodes_before = stats->nodes_expanded;
  std::size_t props_before = stats->propagations;
  Searcher searcher(csp, options, stats);
  std::vector<std::vector<std::uint32_t>> solutions;
  searcher.all_solutions = &solutions;
  searcher.max_solutions = 1;
  std::vector<DynamicBitset> domains = csp.domains;
  if (options.use_ac3 &&
      !Ac3(csp, searcher.incidence, &domains, stats)) {
    return std::optional<std::vector<std::uint32_t>>();
  }
  searcher.Search(std::move(domains));
  GQD_TRACE_SPAN_ATTR(span, "nodes_expanded",
                      stats->nodes_expanded - nodes_before);
  GQD_TRACE_SPAN_ATTR(span, "propagations",
                      stats->propagations - props_before);
  if (searcher.injected && solutions.empty()) {
    return Status::ResourceExhausted(
        "injected CSP search failure (failpoint csp.search)");
  }
  if (searcher.cancelled && solutions.empty()) {
    return options.cancel->Check();
  }
  if (searcher.resource_tripped && solutions.empty()) {
    return options.budget->Check();
  }
  if (searcher.budget_exhausted && solutions.empty()) {
    return Status::ResourceExhausted("CSP node budget exhausted");
  }
  if (solutions.empty()) {
    return std::optional<std::vector<std::uint32_t>>();
  }
  return std::optional<std::vector<std::uint32_t>>(std::move(solutions[0]));
}

Result<std::vector<std::vector<std::uint32_t>>> EnumerateCspSolutions(
    const Csp& csp, std::size_t max_solutions) {
  CspStats stats;
  CspOptions options;
  Searcher searcher(csp, options, &stats);
  std::vector<std::vector<std::uint32_t>> solutions;
  searcher.all_solutions = &solutions;
  searcher.max_solutions = max_solutions;
  std::vector<DynamicBitset> domains = csp.domains;
  if (!Ac3(csp, searcher.incidence, &domains, &stats)) {
    return solutions;
  }
  searcher.Search(std::move(domains));
  if (searcher.injected) {
    return Status::ResourceExhausted(
        "injected CSP search failure (failpoint csp.search)");
  }
  if (searcher.cancelled) {
    return options.cancel->Check();
  }
  if (searcher.budget_exhausted) {
    return Status::ResourceExhausted("CSP node budget exhausted");
  }
  return solutions;
}

}  // namespace gqd
