#include "homomorphism/data_graph_hom.h"

#include <cassert>

namespace gqd {

BinaryRelation Reachability(const DataGraph& graph) {
  std::size_t n = graph.NumNodes();
  BinaryRelation edges(n);
  for (const Edge& e : graph.edges()) {
    edges.Set(e.from, e.to);
  }
  BinaryRelation reach = TransitivePlus(edges);
  reach.UnionWith(BinaryRelation::Identity(n));
  return reach;
}

bool IsDataGraphHomomorphism(const DataGraph& graph,
                             const NodeMapping& mapping) {
  assert(mapping.size() == graph.NumNodes());
  // (1) Single-step compatibility.
  for (const Edge& e : graph.edges()) {
    if (!graph.HasEdge(mapping[e.from], e.label, mapping[e.to])) {
      return false;
    }
  }
  // (2) Data compatibility of reachable pairs.
  BinaryRelation reach = Reachability(graph);
  for (NodeId p = 0; p < graph.NumNodes(); p++) {
    for (NodeId q = 0; q < graph.NumNodes(); q++) {
      if (!reach.Test(p, q)) {
        continue;
      }
      bool same_source = graph.DataValueOf(p) == graph.DataValueOf(q);
      bool same_image =
          graph.DataValueOf(mapping[p]) == graph.DataValueOf(mapping[q]);
      if (same_source != same_image) {
        return false;
      }
    }
  }
  return true;
}

Csp BuildHomomorphismCsp(const DataGraph& graph) {
  std::size_t n = graph.NumNodes();
  Csp csp = Csp::Full(n, n);
  BinaryRelation reach = Reachability(graph);

  // Per ordered node pair (p, q), the allowed image pairs (x, y). We only
  // materialize a constraint when (p, q) is actually constrained: some edge
  // p -a-> q exists, or q is reachable from p (p ≠ q). Unary constraints
  // (self-loops, p == q) are folded into the variable domains.
  for (NodeId p = 0; p < n; p++) {
    // Unary: self-loop labels must be preserved.
    for (const auto& [label, q0] : graph.OutEdges(p)) {
      if (q0 != p) {
        continue;
      }
      for (NodeId x = 0; x < n; x++) {
        if (!graph.HasEdge(x, label, x)) {
          csp.domains[p].Reset(x);
        }
      }
    }
  }
  for (NodeId p = 0; p < n; p++) {
    for (NodeId q = 0; q < n; q++) {
      if (p == q) {
        continue;
      }
      // Labels on edges p -> q.
      std::vector<LabelId> labels;
      for (const auto& [label, to] : graph.OutEdges(p)) {
        if (to == q) {
          labels.push_back(label);
        }
      }
      bool reachable = reach.Test(p, q);
      if (labels.empty() && !reachable) {
        continue;
      }
      DynamicBitset allowed(n * n);
      bool same_source = graph.DataValueOf(p) == graph.DataValueOf(q);
      for (NodeId x = 0; x < n; x++) {
        for (NodeId y = 0; y < n; y++) {
          bool ok = true;
          for (LabelId label : labels) {
            if (!graph.HasEdge(x, label, y)) {
              ok = false;
              break;
            }
          }
          if (ok && reachable) {
            bool same_image =
                graph.DataValueOf(x) == graph.DataValueOf(y);
            if (same_source != same_image) {
              ok = false;
            }
          }
          if (ok) {
            allowed.Set(x * n + y);
          }
        }
      }
      csp.AddConstraint(p, q, std::move(allowed));
    }
  }
  return csp;
}

Result<std::optional<NodeMapping>> FindHomomorphismWithPins(
    const DataGraph& graph,
    const std::vector<std::pair<NodeId, NodeId>>& pins,
    const CspOptions& options, CspStats* stats) {
  Csp csp = BuildHomomorphismCsp(graph);
  for (const auto& [node, image] : pins) {
    csp.Pin(node, image);
    if (csp.domains[node].None()) {
      return std::optional<NodeMapping>();
    }
  }
  GQD_ASSIGN_OR_RETURN(auto solution, SolveCsp(csp, options, stats));
  if (!solution.has_value()) {
    return std::optional<NodeMapping>();
  }
  NodeMapping mapping(solution->begin(), solution->end());
  return std::optional<NodeMapping>(std::move(mapping));
}

Result<std::vector<NodeMapping>> EnumerateHomomorphisms(
    const DataGraph& graph, std::size_t max_solutions) {
  Csp csp = BuildHomomorphismCsp(graph);
  GQD_ASSIGN_OR_RETURN(auto solutions,
                       EnumerateCspSolutions(csp, max_solutions));
  std::vector<NodeMapping> mappings;
  mappings.reserve(solutions.size());
  for (auto& s : solutions) {
    mappings.emplace_back(s.begin(), s.end());
  }
  return mappings;
}

}  // namespace gqd
