// E1 — Figure 1 + Example 12, as a benchmark.
//
// Regenerates the paper's definability matrix for S1/S2/S3 on the Figure-1
// graph (who can define what) and measures the cost of each check. The
// "row" each benchmark emits is the verdict (counter `definable`: 1/0) and
// the checker-specific cost counter (macro tuples, monoid size, or
// homomorphism seeds).

#include <benchmark/benchmark.h>

#include "definability/krem_definability.h"
#include "definability/ree_definability.h"
#include "definability/rpq_definability.h"
#include "definability/ucrdpq_definability.h"
#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"
#include "graph/examples.h"
#include "rem/parser.h"
#include "ree/parser.h"
#include "regex/parser.h"

namespace gqd {
namespace {

BinaryRelation RelationByIndex(const DataGraph& g, int index) {
  switch (index) {
    case 1:
      return Figure1S1(g);
    case 2:
      return Figure1S2(g);
    default:
      return Figure1S3(g);
  }
}

void BM_Figure1_RpqDefinability(benchmark::State& state) {
  DataGraph g = Figure1Graph();
  BinaryRelation s = RelationByIndex(g, static_cast<int>(state.range(0)));
  std::size_t tuples = 0;
  bool definable = false;
  for (auto _ : state) {
    auto result = CheckRpqDefinability(g, s);
    benchmark::DoNotOptimize(result);
    tuples = result.ValueOrDie().tuples_explored;
    definable =
        result.ValueOrDie().verdict == DefinabilityVerdict::kDefinable;
  }
  state.counters["definable"] = definable ? 1 : 0;
  state.counters["macro_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_Figure1_RpqDefinability)->Arg(1)->Arg(2)->Arg(3);

void BM_Figure1_KRemDefinability(benchmark::State& state) {
  DataGraph g = Figure1Graph();
  BinaryRelation s = RelationByIndex(g, static_cast<int>(state.range(0)));
  std::size_t k = static_cast<std::size_t>(state.range(1));
  std::size_t tuples = 0;
  bool definable = false;
  for (auto _ : state) {
    auto result = CheckKRemDefinability(g, s, k);
    benchmark::DoNotOptimize(result);
    tuples = result.ValueOrDie().tuples_explored;
    definable =
        result.ValueOrDie().verdict == DefinabilityVerdict::kDefinable;
  }
  state.counters["definable"] = definable ? 1 : 0;
  state.counters["macro_tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_Figure1_KRemDefinability)
    ->ArgsProduct({{1, 2, 3}, {0, 1, 2}});

void BM_Figure1_ReeDefinability(benchmark::State& state) {
  DataGraph g = Figure1Graph();
  BinaryRelation s = RelationByIndex(g, static_cast<int>(state.range(0)));
  std::size_t monoid = 0;
  bool definable = false;
  for (auto _ : state) {
    auto result = CheckReeDefinability(g, s);
    benchmark::DoNotOptimize(result);
    monoid = result.ValueOrDie().monoid_size;
    definable =
        result.ValueOrDie().verdict == DefinabilityVerdict::kDefinable;
  }
  state.counters["definable"] = definable ? 1 : 0;
  state.counters["monoid_size"] = static_cast<double>(monoid);
}
BENCHMARK(BM_Figure1_ReeDefinability)->Arg(1)->Arg(2)->Arg(3);

void BM_Figure1_UcrdpqDefinability(benchmark::State& state) {
  DataGraph g = Figure1Graph();
  BinaryRelation s = RelationByIndex(g, static_cast<int>(state.range(0)));
  std::size_t seeds = 0;
  bool definable = false;
  for (auto _ : state) {
    auto result = CheckUcrdpqDefinability(g, s);
    benchmark::DoNotOptimize(result);
    seeds = result.ValueOrDie().seeds_tried;
    definable =
        result.ValueOrDie().verdict == DefinabilityVerdict::kDefinable;
  }
  state.counters["definable"] = definable ? 1 : 0;
  state.counters["hom_seeds"] = static_cast<double>(seeds);
}
BENCHMARK(BM_Figure1_UcrdpqDefinability)->Arg(1)->Arg(2)->Arg(3);

void BM_Figure1_EvaluateQ1(benchmark::State& state) {
  DataGraph g = Figure1Graph();
  RegexPtr q1 = ParseRegex("a a a").ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateRpq(g, q1));
  }
}
BENCHMARK(BM_Figure1_EvaluateQ1);

void BM_Figure1_EvaluateQ2(benchmark::State& state) {
  DataGraph g = Figure1Graph();
  RemPtr q2 = ParseRem("$r1. a $r2. a[r1=] a[r2=]").ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateRem(g, q2));
  }
}
BENCHMARK(BM_Figure1_EvaluateQ2);

void BM_Figure1_EvaluateQ3(benchmark::State& state) {
  DataGraph g = Figure1Graph();
  ReePtr q3 = ParseRee("(a (a)= a)=").ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateRee(g, q3));
  }
}
BENCHMARK(BM_Figure1_EvaluateQ3);

}  // namespace
}  // namespace gqd
