// E8 — synthesized-query growth (Discussion, Section 6).
//
// Paper claim: the synthesized defining queries are star-free and blow up —
// worst case doubly exponential for REM and exponential for REE. The
// series synthesize defining queries for relations whose shortest
// witnesses get longer (paths in line graphs of growing length) and report
// the printed query size (`query_chars`) and witness sizes.

#include <benchmark/benchmark.h>

#include "graph/generators.h"
#include "synthesis/synthesis.h"

namespace gqd {
namespace {

/// A line graph 0→1→...→L with alternating data values, and the singleton
/// relation {(0, L)}: its only witness is the full-length path, so the
/// synthesized query must spell out all L blocks.
void BM_SynthesizeRem_GrowingWitness(benchmark::State& state) {
  std::size_t length = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> values;
  for (std::size_t i = 0; i <= length; i++) {
    values.push_back(static_cast<std::uint32_t>(i % 2));
  }
  DataGraph g = LineGraph(values);
  BinaryRelation s(g.NumNodes());
  s.Set(0, static_cast<NodeId>(length));
  std::size_t query_chars = 0;
  for (auto _ : state) {
    auto query = SynthesizeKRemQuery(g, s, 1);
    benchmark::DoNotOptimize(query);
    if (query.ok() && query.value().has_value()) {
      query_chars = RemToString(*query.value()).size();
    }
  }
  state.counters["witness_length"] = static_cast<double>(length);
  state.counters["query_chars"] = static_cast<double>(query_chars);
}
BENCHMARK(BM_SynthesizeRem_GrowingWitness)->DenseRange(2, 12, 2);

void BM_SynthesizeRee_GrowingWitness(benchmark::State& state) {
  std::size_t length = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint32_t> values;
  for (std::size_t i = 0; i <= length; i++) {
    values.push_back(static_cast<std::uint32_t>(i % 2));
  }
  DataGraph g = LineGraph(values);
  BinaryRelation s(g.NumNodes());
  s.Set(0, static_cast<NodeId>(length));
  std::size_t query_chars = 0;
  for (auto _ : state) {
    auto query = SynthesizeReeQuery(g, s);
    benchmark::DoNotOptimize(query);
    if (query.ok() && query.value().has_value()) {
      query_chars = ReeToString(*query.value()).size();
    }
  }
  state.counters["witness_length"] = static_cast<double>(length);
  state.counters["query_chars"] = static_cast<double>(query_chars);
}
BENCHMARK(BM_SynthesizeRee_GrowingWitness)->DenseRange(2, 12, 2);

/// Relation size drives the number of union branches: random definable
/// relations obtained by evaluating a fixed query on growing graphs.
void BM_SynthesizeRpq_GrowingRelation(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  DataGraph g = RandomDataGraph({.num_nodes = n,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 20,
                                 .seed = 3});
  // Definable by construction: all pairs connected by "a b".
  BinaryRelation s(g.NumNodes());
  for (const Edge& e1 : g.edges()) {
    for (const Edge& e2 : g.edges()) {
      if (e1.to == e2.from && g.labels().NameOf(e1.label) == "a" &&
          g.labels().NameOf(e2.label) == "b") {
        s.Set(e1.from, e2.to);
      }
    }
  }
  std::size_t query_chars = 0;
  for (auto _ : state) {
    auto query = SynthesizeRpqQuery(g, s);
    benchmark::DoNotOptimize(query);
    if (query.ok() && query.value().has_value()) {
      query_chars = RegexToString(*query.value()).size();
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["relation_size"] = static_cast<double>(s.Count());
  state.counters["query_chars"] = static_cast<double>(query_chars);
}
BENCHMARK(BM_SynthesizeRpq_GrowingRelation)->DenseRange(4, 10, 2);

/// The canonical UCRDPQ's size is Θ(|S| · (|E| + reachable pairs)).
void BM_SynthesizeCanonicalUcrdpq(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  DataGraph g = RandomDataGraph({.num_nodes = n,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 20,
                                 .seed = 3});
  TupleRelation s(2);
  s.Insert({0, static_cast<NodeId>(n - 1)});
  std::size_t atoms = 0;
  for (auto _ : state) {
    auto query = SynthesizeCanonicalUcrdpq(g, s);
    benchmark::DoNotOptimize(query);
    if (query.ok()) {
      atoms = 0;
      for (const Crdpq& d : query.value().disjuncts) {
        atoms += d.atoms.size();
      }
    }
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["total_atoms"] = static_cast<double>(atoms);
}
BENCHMARK(BM_SynthesizeCanonicalUcrdpq)->DenseRange(4, 12, 2);

}  // namespace
}  // namespace gqd
