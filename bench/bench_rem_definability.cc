// E2 + E3 — the k-RDPQ_mem definability space bound (Theorem 22) and the
// unbounded-REM wall (Theorem 24 / Lemma 23).
//
// Theorem 22 puts k-RDPQ_mem-definability in NSPACE(O(n²δ^k)); the
// macro-tuple BFS's state space is 2^(n²(δ+1)^k). The series sweep n, δ
// and k on random graphs and report `macro_tuples` (tuples explored) —
// the measured shape should grow explosively in k and δ and stay moderate
// in n at fixed k. BM_RemDefinability (k = δ, Lemma 23) demonstrates the
// doubly-exponential wall the paper's EXPSPACE-completeness predicts:
// already at δ = 3 most instances exhaust the budget.
//
// All runs use *non-definable-leaning* random relations: refuting
// definability requires exhausting the reachable macro space, which is the
// honest cost (definable instances exit early).

#include <benchmark/benchmark.h>

#include "definability/krem_definability.h"
#include "graph/generators.h"

namespace gqd {
namespace {

void RunKRem(benchmark::State& state, std::size_t n, std::size_t delta,
             std::size_t k, std::size_t num_threads = 1) {
  DataGraph g = RandomDataGraph({.num_nodes = n,
                                 .num_labels = 1,
                                 .num_data_values = delta,
                                 .edge_percent = 30,
                                 .seed = 99});
  BinaryRelation s = RandomRelation(n, 20, 1234);
  KRemDefinabilityOptions options;
  options.max_tuples = 50'000;
  options.num_threads = num_threads;
  std::size_t tuples = 0;
  int verdict = 0;
  for (auto _ : state) {
    auto result = CheckKRemDefinability(g, s, k, options);
    benchmark::DoNotOptimize(result);
    tuples = result.ValueOrDie().tuples_explored;
    verdict = static_cast<int>(result.ValueOrDie().verdict);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["delta"] = static_cast<double>(delta);
  state.counters["k"] = static_cast<double>(k);
  state.counters["macro_tuples"] = static_cast<double>(tuples);
  state.counters["tuples_per_sec"] =
      benchmark::Counter(static_cast<double>(tuples),
                         benchmark::Counter::kIsIterationInvariantRate);
  state.counters["verdict"] = verdict;  // 0 def, 1 not, 2 exhausted
}

void BM_KRemDefinability_SweepN(benchmark::State& state) {
  RunKRem(state, static_cast<std::size_t>(state.range(0)), 2, 1);
}
BENCHMARK(BM_KRemDefinability_SweepN)->DenseRange(3, 7);

// Frontier-parallel successor generation on the largest SweepN config.
// Results are bit-identical across thread counts (deterministic merge);
// only wall time moves.
void BM_KRemDefinability_Threads(benchmark::State& state) {
  RunKRem(state, 7, 2, 1, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_KRemDefinability_Threads)->Arg(1)->Arg(2)->Arg(4);

void BM_KRemDefinability_SweepK(benchmark::State& state) {
  RunKRem(state, 4, 2, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_KRemDefinability_SweepK)->DenseRange(0, 3);

void BM_KRemDefinability_SweepDelta(benchmark::State& state) {
  RunKRem(state, 4, static_cast<std::size_t>(state.range(0)), 1);
}
BENCHMARK(BM_KRemDefinability_SweepDelta)->DenseRange(1, 4);

/// E12 — the Discussion-§6 structural question: definability on graphs
/// with few cycles. On a DAG every data path is bounded by the longest
/// path, so the reachable macro-tuple space collapses; a single back edge
/// reopens unbounded witnesses. Same n, δ, k and edge count — only the
/// cycle structure differs.
void RunDagVersusCycle(benchmark::State& state, bool add_back_edge) {
  // A layered DAG: 6 nodes in 3 layers, forward edges only.
  DataGraph g;
  g.AddLabel("a");
  g.AddDataValue("0");
  g.AddDataValue("1");
  std::vector<NodeId> nodes;
  for (int i = 0; i < 6; i++) {
    nodes.push_back(
        g.AddNodeWithValue(i % 2 == 0 ? "0" : "1", "n" + std::to_string(i)));
  }
  for (int i = 0; i < 4; i++) {
    g.AddEdgeByName(nodes[i], "a", nodes[i + 1]);
    if (i + 2 < 6) {
      g.AddEdgeByName(nodes[i], "a", nodes[i + 2]);
    }
  }
  if (add_back_edge) {
    g.AddEdgeByName(nodes[5], "a", nodes[0]);
  }
  BinaryRelation s(g.NumNodes());
  s.Set(nodes[0], nodes[5]);
  KRemDefinabilityOptions options;
  options.max_tuples = 50'000;
  std::size_t tuples = 0;
  int verdict = 0;
  for (auto _ : state) {
    auto result = CheckKRemDefinability(g, s, 1, options);
    benchmark::DoNotOptimize(result);
    tuples = result.ValueOrDie().tuples_explored;
    verdict = static_cast<int>(result.ValueOrDie().verdict);
  }
  state.counters["back_edge"] = add_back_edge ? 1 : 0;
  state.counters["macro_tuples"] = static_cast<double>(tuples);
  state.counters["verdict"] = verdict;
}

void BM_KRemDefinability_Dag(benchmark::State& state) {
  RunDagVersusCycle(state, false);
}
BENCHMARK(BM_KRemDefinability_Dag);

void BM_KRemDefinability_WithCycle(benchmark::State& state) {
  RunDagVersusCycle(state, true);
}
BENCHMARK(BM_KRemDefinability_WithCycle);

/// Label-local "banded" graph: the node range splits into `bands`
/// contiguous bands and band b's outgoing edges all carry label b. Each
/// (store_mask, label, pattern) transition therefore draws its sources
/// from one band — the narrow source-mask word spans and single-target
/// rows the dispatch table specializes for. Real graphs show the same
/// locality (edge labels correlate with node kinds).
DataGraph BandedGraph(std::size_t n, std::size_t bands, std::size_t delta) {
  DataGraph g;
  std::vector<std::string> labels(bands);
  for (std::size_t b = 0; b < bands; b++) {
    labels[b] = "l" + std::to_string(b);
    g.AddLabel(labels[b]);
  }
  for (std::size_t i = 0; i < n; i++) {
    g.AddNodeWithValue(std::to_string(i % delta), "n" + std::to_string(i));
  }
  for (std::size_t u = 0; u < n; u++) {
    const std::string& label = labels[u * bands / n];
    g.AddEdgeByName(static_cast<NodeId>(u), label,
                    static_cast<NodeId>((u + 1) % n));
    g.AddEdgeByName(static_cast<NodeId>(u), label,
                    static_cast<NodeId>((u * 7 + 3) % n));
  }
  return g;
}

/// Plan-dispatch ablation: the same medium banded workload through the
/// planned engine (per-transition kernels from the KernelDispatchTable —
/// span-clipped scans plus single-target/CSR inner loops) and the
/// word-parallel kernel engine it downgrades to. run_benches.sh pairs the
/// *_Plan/*_NoPlan entries into a plan-dispatch speedup record.
void RunKRemMediumSparse(benchmark::State& state, KRemEngine engine) {
  DataGraph g = BandedGraph(128, 16, 15);
  BinaryRelation s = RandomRelation(128, 15, 4321);
  KRemDefinabilityOptions options;
  options.max_tuples = 5'000;
  options.engine = engine;
  std::size_t tuples = 0;
  int verdict = 0;
  for (auto _ : state) {
    auto result = CheckKRemDefinability(g, s, 1, options);
    benchmark::DoNotOptimize(result);
    tuples = result.ValueOrDie().tuples_explored;
    verdict = static_cast<int>(result.ValueOrDie().verdict);
  }
  state.counters["macro_tuples"] = static_cast<double>(tuples);
  state.counters["tuples_per_sec"] =
      benchmark::Counter(static_cast<double>(tuples),
                         benchmark::Counter::kIsIterationInvariantRate);
  state.counters["verdict"] = verdict;
}

void BM_KRemDefinability_MediumSparse_Plan(benchmark::State& state) {
  RunKRemMediumSparse(state, KRemEngine::kPlanned);
}
BENCHMARK(BM_KRemDefinability_MediumSparse_Plan);

void BM_KRemDefinability_MediumSparse_NoPlan(benchmark::State& state) {
  RunKRemMediumSparse(state, KRemEngine::kKernel);
}
BENCHMARK(BM_KRemDefinability_MediumSparse_NoPlan);

/// Lemma 23: unbounded-REM definability at k = δ — the EXPSPACE wall.
void BM_RemDefinability_Unbounded(benchmark::State& state) {
  std::size_t delta = static_cast<std::size_t>(state.range(0));
  DataGraph g = RandomDataGraph({.num_nodes = 4,
                                 .num_labels = 1,
                                 .num_data_values = delta,
                                 .edge_percent = 30,
                                 .seed = 99});
  BinaryRelation s = RandomRelation(4, 20, 1234);
  KRemDefinabilityOptions options;
  options.max_tuples = 20'000;
  std::size_t tuples = 0;
  int verdict = 0;
  for (auto _ : state) {
    auto result = CheckRemDefinability(g, s, options);
    benchmark::DoNotOptimize(result);
    tuples = result.ValueOrDie().tuples_explored;
    verdict = static_cast<int>(result.ValueOrDie().verdict);
  }
  state.counters["delta_eq_k"] = static_cast<double>(delta);
  state.counters["macro_tuples"] = static_cast<double>(tuples);
  state.counters["verdict"] = verdict;
}
BENCHMARK(BM_RemDefinability_Unbounded)->DenseRange(1, 3);

}  // namespace
}  // namespace gqd
