// E4 — the RDPQ_= level-closure algorithm (Definition 27, Lemmas 28–31).
//
// Paper claims exercised:
//   * the hierarchy stabilizes within n² levels (Lemma 28) — counter
//     `levels` stays far below n² in practice;
//   * the cost driver is the composition-monoid size (`monoid_size`),
//     which grows with graph density and value diversity — the PSPACE
//     flavor made measurable.

#include <benchmark/benchmark.h>

#include "definability/ree_definability.h"
#include "graph/generators.h"

namespace gqd {
namespace {

void RunRee(benchmark::State& state, std::size_t n, std::size_t delta,
            std::size_t labels, std::uint32_t edge_percent) {
  DataGraph g = RandomDataGraph({.num_nodes = n,
                                 .num_labels = labels,
                                 .num_data_values = delta,
                                 .edge_percent = edge_percent,
                                 .seed = 17});
  BinaryRelation s = RandomRelation(n, 20, 4321);
  ReeDefinabilityOptions options;
  options.max_monoid_size = 300'000;
  std::size_t monoid = 0, levels = 0;
  int verdict = 0;
  for (auto _ : state) {
    auto result = CheckReeDefinability(g, s, options);
    benchmark::DoNotOptimize(result);
    monoid = result.ValueOrDie().monoid_size;
    levels = result.ValueOrDie().levels_used;
    verdict = static_cast<int>(result.ValueOrDie().verdict);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["delta"] = static_cast<double>(delta);
  state.counters["monoid_size"] = static_cast<double>(monoid);
  state.counters["elements_per_sec"] =
      benchmark::Counter(static_cast<double>(monoid),
                         benchmark::Counter::kIsIterationInvariantRate);
  state.counters["levels"] = static_cast<double>(levels);
  state.counters["level_bound_n2"] = static_cast<double>(n * n);
  state.counters["verdict"] = verdict;
}

void BM_ReeDefinability_SweepN(benchmark::State& state) {
  RunRee(state, static_cast<std::size_t>(state.range(0)), 2, 1, 25);
}
BENCHMARK(BM_ReeDefinability_SweepN)->DenseRange(3, 6);

void BM_ReeDefinability_SweepDelta(benchmark::State& state) {
  RunRee(state, 4, static_cast<std::size_t>(state.range(0)), 1, 25);
}
BENCHMARK(BM_ReeDefinability_SweepDelta)->DenseRange(1, 4);

void BM_ReeDefinability_SweepDensity(benchmark::State& state) {
  RunRee(state, 4, 2, 1, static_cast<std::uint32_t>(state.range(0)));
}
BENCHMARK(BM_ReeDefinability_SweepDensity)->Arg(10)->Arg(20)->Arg(30)->Arg(40);

void BM_ReeDefinability_SweepLabels(benchmark::State& state) {
  RunRee(state, 4, 2, static_cast<std::size_t>(state.range(0)), 20);
}
BENCHMARK(BM_ReeDefinability_SweepLabels)->DenseRange(1, 3);

}  // namespace
}  // namespace gqd
