// E5 — UCRDPQ-definability via homomorphism search (Theorem 35).
//
// Paper claims exercised:
//   * definability reduces to the absence of a violating homomorphism
//     (Lemma 34) — the checker's cost is |S| · n^r seeded CSP searches;
//   * coNP flavor: cost grows with graph size and relation size, and the
//     Figure-3 graphs built from random 3-CNF formulas get harder with
//     more clauses (series BM_UcrdpqOnSatReduction).

#include <benchmark/benchmark.h>

#include "definability/ucrdpq_definability.h"
#include "graph/generators.h"
#include "reductions/cnf.h"
#include "reductions/sat_reduction.h"

namespace gqd {
namespace {

void BM_UcrdpqDefinability_SweepN(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  DataGraph g = RandomDataGraph({.num_nodes = n,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 25,
                                 .seed = 5});
  BinaryRelation s = RandomRelation(n, 15, 55);
  std::size_t seeds = 0;
  int verdict = 0;
  CspStats stats;
  for (auto _ : state) {
    auto result = CheckUcrdpqDefinability(g, s);
    benchmark::DoNotOptimize(result);
    seeds = result.ValueOrDie().seeds_tried;
    verdict = static_cast<int>(result.ValueOrDie().verdict);
    stats = result.ValueOrDie().csp_stats;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["hom_seeds"] = static_cast<double>(seeds);
  state.counters["csp_nodes"] = static_cast<double>(stats.nodes_expanded);
  state.counters["verdict"] = verdict;
}
BENCHMARK(BM_UcrdpqDefinability_SweepN)->DenseRange(4, 12, 2);

void BM_UcrdpqDefinability_SweepRelationSize(benchmark::State& state) {
  DataGraph g = RandomDataGraph({.num_nodes = 8,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 25,
                                 .seed = 5});
  BinaryRelation s = RandomRelation(
      8, static_cast<std::uint32_t>(state.range(0)), 55);
  std::size_t seeds = 0;
  for (auto _ : state) {
    auto result = CheckUcrdpqDefinability(g, s);
    benchmark::DoNotOptimize(result);
    seeds = result.ValueOrDie().seeds_tried;
  }
  state.counters["pair_percent"] = static_cast<double>(state.range(0));
  state.counters["relation_size"] = static_cast<double>(s.Count());
  state.counters["hom_seeds"] = static_cast<double>(seeds);
}
BENCHMARK(BM_UcrdpqDefinability_SweepRelationSize)
    ->Arg(5)->Arg(15)->Arg(30)->Arg(50);

/// Theorem 35 end-to-end: definability checks on Figure-3 graphs built
/// from random 3-CNF formulas, sweeping clause count.
void BM_UcrdpqOnSatReduction(benchmark::State& state) {
  std::size_t clauses = static_cast<std::size_t>(state.range(0));
  CnfFormula f = RandomThreeCnf(3, clauses, 271828);
  auto reduction = BuildSatReduction(f);
  if (!reduction.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  int verdict = 0;
  std::size_t seeds = 0;
  for (auto _ : state) {
    auto result = CheckUcrdpqDefinability(reduction.value().graph,
                                          reduction.value().relation);
    benchmark::DoNotOptimize(result);
    verdict = static_cast<int>(result.ValueOrDie().verdict);
    seeds = result.ValueOrDie().seeds_tried;
  }
  state.counters["clauses"] = static_cast<double>(clauses);
  state.counters["graph_nodes"] =
      static_cast<double>(reduction.value().graph.NumNodes());
  state.counters["hom_seeds"] = static_cast<double>(seeds);
  state.counters["definable_ie_unsat"] = verdict == 0 ? 1 : 0;
}
BENCHMARK(BM_UcrdpqOnSatReduction)->DenseRange(1, 4);

}  // namespace
}  // namespace gqd
