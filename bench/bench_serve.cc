// E10 — serving-layer benchmarks: request dispatch, cache hit/miss paths,
// batched fan-out across the worker pool, and full TCP round trips.
//
// Complements `gqd bench-serve --json` (the closed-loop multi-client
// driver): these microbenchmarks isolate each layer, so a regression in
// e.g. the JSON parser shows up separately from socket overhead.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "graph/examples.h"
#include "graph/generators.h"
#include "graph/serialization.h"
#include "runtime/client.h"
#include "runtime/json.h"
#include "runtime/server.h"
#include "runtime/service.h"

namespace gqd {
namespace {

const char* kEvalRequest =
    R"({"cmd":"eval","graph":"fig1","language":"rpq","query":"a.a.a"})";

// --- JSON layer -------------------------------------------------------------

void BM_JsonParseRequest(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = JsonValue::Parse(kEvalRequest);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_JsonParseRequest);

// --- Service dispatch (no sockets) ------------------------------------------

void BM_ServeCacheHit(benchmark::State& state) {
  QueryService service;
  service.registry().Register("fig1", Figure1Graph());
  bool shutdown = false;
  (void)service.HandleLine(kEvalRequest, &shutdown);  // warm the cache
  for (auto _ : state) {
    std::string response = service.HandleLine(kEvalRequest, &shutdown);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeCacheHit);

void BM_ServeCacheMiss(benchmark::State& state) {
  // A 1-entry-per-shard cache thrashed by 64 distinct queries: every
  // request pays parse + evaluate + insert (the cold path).
  ServiceOptions options;
  options.cache_capacity = 1;
  QueryService service(options);
  service.registry().Register("fig1", Figure1Graph());
  std::vector<std::string> requests;
  for (int i = 0; i < 64; i++) {
    std::string query = "a";
    for (int j = 0; j < i % 8; j++) {
      query += ".a";
    }
    query += i % 2 == 0 ? "" : "+";
    requests.push_back(
        R"({"cmd":"eval","graph":"fig1","language":"rpq","query":")" +
        query + "\"}");
  }
  bool shutdown = false;
  std::size_t i = 0;
  for (auto _ : state) {
    std::string response =
        service.HandleLine(requests[i++ % requests.size()], &shutdown);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeCacheMiss);

void BM_ServeBatchEval(benchmark::State& state) {
  // One request fanning state.range(0) REM queries across the pool on a
  // 120-node line graph (each query is ~ms of BFS work).
  QueryService service;
  std::vector<std::uint32_t> values;
  for (int i = 0; i < 120; i++) {
    values.push_back(static_cast<std::uint32_t>(i % 5));
  }
  service.registry().Register("line", LineGraph(values));
  ServiceOptions cold_options;
  cold_options.cache_capacity = 1;  // keep every iteration on the cold path
  JsonValue::Array queries;
  for (std::int64_t i = 0; i < state.range(0); i++) {
    // Distinct register names dodge the normalization cache.
    std::string r = "r" + std::to_string(i + 1);
    queries.emplace_back("$" + r + ". a+ [" + r + "=]");
  }
  JsonValue::Object request;
  request.emplace_back("cmd", "eval");
  request.emplace_back("graph", "line");
  request.emplace_back("language", "rem");
  request.emplace_back("queries", JsonValue(std::move(queries)));
  std::string line = JsonValue(std::move(request)).Serialize();
  bool shutdown = false;
  for (auto _ : state) {
    QueryService fresh(cold_options);
    fresh.registry().Register("line", LineGraph(values));
    std::string response = fresh.HandleLine(line, &shutdown);
    benchmark::DoNotOptimize(response);
  }
}
BENCHMARK(BM_ServeBatchEval)->Arg(1)->Arg(4)->Arg(16);

// --- Full TCP round trip ----------------------------------------------------

void BM_ServeTcpRoundTrip(benchmark::State& state) {
  QueryService service;
  service.registry().Register("fig1", Figure1Graph());
  Server server(&service);
  if (!server.Start(0).ok()) {
    state.SkipWithError("could not bind a loopback port");
    return;
  }
  LineClient client;
  if (!client.Connect(server.port()).ok()) {
    state.SkipWithError("could not connect");
    return;
  }
  for (auto _ : state) {
    auto response = client.Call(kEvalRequest);
    benchmark::DoNotOptimize(response);
  }
  client.Close();
  server.Stop();
  server.Wait();
}
BENCHMARK(BM_ServeTcpRoundTrip);

}  // namespace
}  // namespace gqd
