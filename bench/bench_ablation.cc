// E9 — ablations for the design choices DESIGN.md calls out.
//
//   * BinaryRelation composition on packed bitset rows versus a naive
//     set-of-pairs representation (the REE monoid's inner loop);
//   * generator-only monoid closure (|M|·|gens|) versus all-pairs closure
//     (|M|²) on the same graph;
//   * AC-3 propagation on/off in the homomorphism CSP search.

#include <benchmark/benchmark.h>

#include <set>
#include <unordered_set>

#include "definability/ree_definability.h"
#include "definability/small_relation.h"
#include "graph/generators.h"
#include "homomorphism/csp.h"
#include "homomorphism/data_graph_hom.h"

namespace gqd {
namespace {

// --- Relation composition: bitset vs set-of-pairs ---------------------------

using PairSet = std::set<std::pair<NodeId, NodeId>>;

PairSet ToPairSet(const BinaryRelation& r) {
  PairSet out;
  for (const auto& p : r.Pairs()) {
    out.insert(p);
  }
  return out;
}

PairSet NaiveCompose(const PairSet& a, const PairSet& b, std::size_t n) {
  PairSet out;
  for (const auto& [u, z1] : a) {
    for (const auto& [z2, v] : b) {
      if (z1 == z2) {
        out.insert({u, v});
      }
    }
  }
  (void)n;
  return out;
}

void BM_ComposeBitset(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  BinaryRelation a = RandomRelation(n, 20, 1);
  BinaryRelation b = RandomRelation(n, 20, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Compose(b));
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_ComposeBitset)->RangeMultiplier(2)->Range(8, 128);

void BM_ComposeNaivePairs(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  PairSet a = ToPairSet(RandomRelation(n, 20, 1));
  PairSet b = ToPairSet(RandomRelation(n, 20, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveCompose(a, b, n));
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_ComposeNaivePairs)->RangeMultiplier(2)->Range(8, 128);

// --- Packed 64-bit relations vs bitset rows ----------------------------------

void BM_ComposePacked(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  DataGraph g = RandomDataGraph({.num_nodes = n,
                                 .num_labels = 1,
                                 .num_data_values = 2,
                                 .edge_percent = 20,
                                 .seed = 3});
  SmallRelationSpace space(g);
  SmallRelation a = space.Pack(RandomRelation(n, 20, 1));
  SmallRelation b = space.Pack(RandomRelation(n, 20, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(space.Compose(a, b));
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_ComposePacked)->Arg(4)->Arg(6)->Arg(8);

// --- Monoid closure: generator-only vs all-pairs -----------------------------

/// The full level algorithm (base → ∘-closure → add =/≠ restrictions →
/// re-close, to a fixpoint) with the *all-pairs* closure strategy — the
/// pre-optimization |M|² algorithm, for comparison against the library's
/// generator-only |M|·|gens| closure inside CheckReeDefinability.
std::size_t AllPairsLevelAlgorithmSize(const DataGraph& g, std::size_t cap) {
  std::unordered_set<BinaryRelation, BinaryRelationHash> monoid;
  std::vector<BinaryRelation> elements;
  auto insert = [&](BinaryRelation r) {
    if (monoid.insert(r).second) {
      elements.push_back(std::move(r));
    }
  };
  auto close_all_pairs = [&]() {
    for (std::size_t i = 0; i < elements.size() && elements.size() < cap;
         i++) {
      for (std::size_t j = 0; j <= i && elements.size() < cap; j++) {
        insert(elements[i].Compose(elements[j]));
        insert(elements[j].Compose(elements[i]));
      }
    }
  };
  insert(BinaryRelation::Identity(g.NumNodes()));
  for (LabelId a = 0; a < g.NumLabels(); a++) {
    insert(BinaryRelation::FromEdges(g, a));
  }
  close_all_pairs();
  for (std::size_t level = 0; level < g.NumNodes() * g.NumNodes();
       level++) {
    std::size_t before = elements.size();
    for (std::size_t i = 0; i < before && elements.size() < cap; i++) {
      insert(elements[i].EqRestrict(g));
      insert(elements[i].NeqRestrict(g));
    }
    if (elements.size() == before || elements.size() >= cap) {
      break;
    }
    close_all_pairs();
  }
  return elements.size();
}

void BM_MonoidClosure_AllPairs(benchmark::State& state) {
  DataGraph g = RandomDataGraph({.num_nodes = 5,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent =
                                     static_cast<std::uint32_t>(
                                         state.range(0)),
                                 .seed = 8});
  std::size_t size = 0;
  for (auto _ : state) {
    size = AllPairsLevelAlgorithmSize(g, 300'000);
    benchmark::DoNotOptimize(size);
  }
  state.counters["edge_percent"] = static_cast<double>(state.range(0));
  state.counters["monoid_size"] = static_cast<double>(size);
}
BENCHMARK(BM_MonoidClosure_AllPairs)->Arg(15)->Arg(25);

void BM_MonoidClosure_GeneratorOnly(benchmark::State& state) {
  DataGraph g = RandomDataGraph({.num_nodes = 5,
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent =
                                     static_cast<std::uint32_t>(
                                         state.range(0)),
                                 .seed = 8});
  // The library's checker at max_levels = 1 without restrictions applied
  // is not separable; instead time the full (levels included) checker —
  // the generator-only closure dominates its runtime.
  BinaryRelation s = RandomRelation(g.NumNodes(), 20, 77);
  ReeDefinabilityOptions options;
  options.max_monoid_size = 300'000;
  std::size_t size = 0;
  for (auto _ : state) {
    auto result = CheckReeDefinability(g, s, options);
    benchmark::DoNotOptimize(result);
    size = result.ValueOrDie().monoid_size;
  }
  state.counters["edge_percent"] = static_cast<double>(state.range(0));
  state.counters["monoid_size"] = static_cast<double>(size);
}
BENCHMARK(BM_MonoidClosure_GeneratorOnly)->Arg(15)->Arg(25);

// --- AC-3 on/off in the homomorphism search ----------------------------------

void RunHomSearch(benchmark::State& state, bool use_ac3) {
  DataGraph g = RandomDataGraph({.num_nodes =
                                     static_cast<std::size_t>(state.range(0)),
                                 .num_labels = 2,
                                 .num_data_values = 2,
                                 .edge_percent = 25,
                                 .seed = 5});
  CspOptions options;
  options.use_ac3 = use_ac3;
  CspStats stats;
  std::size_t count = 0;
  for (auto _ : state) {
    stats = CspStats{};
    auto result = FindHomomorphismWithPins(g, {}, options, &stats);
    benchmark::DoNotOptimize(result);
    count = result.ok() && result.value().has_value() ? 1 : 0;
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["found"] = static_cast<double>(count);
  state.counters["csp_nodes"] = static_cast<double>(stats.nodes_expanded);
  state.counters["propagations"] = static_cast<double>(stats.propagations);
}

void BM_HomSearch_WithAc3(benchmark::State& state) {
  RunHomSearch(state, true);
}
BENCHMARK(BM_HomSearch_WithAc3)->DenseRange(6, 14, 2);

void BM_HomSearch_PlainBacktracking(benchmark::State& state) {
  RunHomSearch(state, false);
}
BENCHMARK(BM_HomSearch_PlainBacktracking)->DenseRange(6, 14, 2);

}  // namespace
}  // namespace gqd
