// E7 — query evaluation tractability (Section 2.1 / Libkin–Vrgoč).
//
// Paper claim: RPQ and RDPQ_= evaluation are polynomial; RDPQ_mem
// evaluation is polynomial for a fixed register count but exponential in
// the number of registers (the assignment space (δ+1)^k). Series:
//   * BM_EvalRpq/BM_EvalRee/BM_EvalRem over graph size n — all polynomial;
//   * BM_EvalRemRegisters over k at fixed n — the (δ+1)^k blow-up.

#include <benchmark/benchmark.h>

#include "eval/rem_eval.h"
#include "eval/ree_eval.h"
#include "eval/rpq_eval.h"
#include "graph/generators.h"
#include "rem/parser.h"
#include "ree/parser.h"
#include "regex/parser.h"

namespace gqd {
namespace {

DataGraph Graph(std::size_t n, std::uint64_t seed = 7) {
  return RandomDataGraph({.num_nodes = n,
                          .num_labels = 2,
                          .num_data_values = 4,
                          .edge_percent = 15,
                          .seed = seed});
}

void BM_EvalRpq(benchmark::State& state) {
  DataGraph g = Graph(static_cast<std::size_t>(state.range(0)));
  RegexPtr e = ParseRegex("a (a | b)* b").ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateRpq(g, e));
  }
  state.counters["nodes"] = static_cast<double>(g.NumNodes());
}
BENCHMARK(BM_EvalRpq)->RangeMultiplier(2)->Range(8, 128);

void BM_EvalRee(benchmark::State& state) {
  DataGraph g = Graph(static_cast<std::size_t>(state.range(0)));
  ReePtr e = ParseRee("((a | b)+)= (a)!=").ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateRee(g, e));
  }
  state.counters["nodes"] = static_cast<double>(g.NumNodes());
}
BENCHMARK(BM_EvalRee)->RangeMultiplier(2)->Range(8, 128);

void BM_EvalRem(benchmark::State& state) {
  DataGraph g = Graph(static_cast<std::size_t>(state.range(0)));
  RemPtr e = ParseRem("$r1. (a | b)+ (a)[r1=]").ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateRem(g, e));
  }
  state.counters["nodes"] = static_cast<double>(g.NumNodes());
}
BENCHMARK(BM_EvalRem)->RangeMultiplier(2)->Range(8, 64);

/// REM evaluation cost versus register count k at fixed n: the query
/// stores k values along a prefix and re-checks them along a suffix, so
/// the reachable assignment space grows like (δ+1)^k.
void BM_EvalRemRegisters(benchmark::State& state) {
  DataGraph g = Graph(16);
  std::size_t k = static_cast<std::size_t>(state.range(0));
  // ↓r1.a ↓r2.a ... ↓rk.a then a[r1=] a[r2=] ... a[rk=].
  RemPtr e;
  {
    std::vector<RemPtr> parts;
    for (std::size_t i = 0; i < k; i++) {
      parts.push_back(rem::Bind({i}, rem::Letter("a")));
    }
    for (std::size_t i = 0; i < k; i++) {
      parts.push_back(rem::Test(rem::Letter("a"), cond::RegisterEq(i)));
    }
    e = rem::Concat(std::move(parts));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateRem(g, e));
  }
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_EvalRemRegisters)->DenseRange(1, 5);

}  // namespace
}  // namespace gqd
