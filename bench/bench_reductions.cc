// E5 + E6 — the lower-bound constructions as measurable artifacts.
//
// Paper claims exercised:
//   * the Theorem-25 tiling reduction is polynomial in the instance:
//     counters `graph_nodes`/`graph_edges` versus width bits n and |T|;
//   * the forward direction runs end-to-end in polynomial time: solver →
//     REM (3) → evaluation = {⟨p2,q2⟩} (BM_TilingForwardDirection);
//   * the Theorem-35 CNF reduction is linear-size in the formula
//     (BM_SatReductionSize).

#include <benchmark/benchmark.h>

#include "eval/rem_eval.h"
#include "reductions/cnf.h"
#include "reductions/sat_reduction.h"
#include "reductions/tiling.h"
#include "reductions/tiling_reduction.h"

namespace gqd {
namespace {

TilingInstance MakeInstance(std::size_t width_bits, std::size_t tiles) {
  TilingInstance instance;
  instance.num_tile_types = tiles;
  // Horizontally: t -> t and t -> t+1; vertically: identical tiles.
  for (TileType t = 0; t < tiles; t++) {
    instance.horizontal.insert({t, t});
    if (t + 1 < tiles) {
      instance.horizontal.insert({t, static_cast<TileType>(t + 1)});
    }
    instance.vertical.insert({t, t});
  }
  instance.initial_tile = 0;
  instance.final_tile = static_cast<TileType>(tiles - 1);
  instance.width_bits = width_bits;
  return instance;
}

void BM_TilingReductionSize_SweepWidth(benchmark::State& state) {
  TilingInstance instance =
      MakeInstance(static_cast<std::size_t>(state.range(0)), 2);
  std::size_t nodes = 0, edges = 0;
  for (auto _ : state) {
    auto reduction = BuildTilingReduction(instance);
    benchmark::DoNotOptimize(reduction);
    nodes = reduction.ValueOrDie().graph.NumNodes();
    edges = reduction.ValueOrDie().graph.NumEdges();
  }
  state.counters["width_bits"] = static_cast<double>(state.range(0));
  state.counters["graph_nodes"] = static_cast<double>(nodes);
  state.counters["graph_edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_TilingReductionSize_SweepWidth)->DenseRange(1, 4);

void BM_TilingReductionSize_SweepTiles(benchmark::State& state) {
  TilingInstance instance =
      MakeInstance(1, static_cast<std::size_t>(state.range(0)));
  std::size_t nodes = 0, edges = 0;
  for (auto _ : state) {
    auto reduction = BuildTilingReduction(instance);
    benchmark::DoNotOptimize(reduction);
    nodes = reduction.ValueOrDie().graph.NumNodes();
    edges = reduction.ValueOrDie().graph.NumEdges();
  }
  state.counters["tile_types"] = static_cast<double>(state.range(0));
  state.counters["graph_nodes"] = static_cast<double>(nodes);
  state.counters["graph_edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_TilingReductionSize_SweepTiles)->DenseRange(2, 5);

/// The full forward pipeline: solve the tiling, build REM (3), evaluate it
/// on the reduction graph and verify it defines exactly {⟨p2, q2⟩}.
void BM_TilingForwardDirection(benchmark::State& state) {
  TilingInstance instance =
      MakeInstance(static_cast<std::size_t>(state.range(0)), 2);
  auto reduction = BuildTilingReduction(instance);
  if (!reduction.ok()) {
    state.SkipWithError("reduction failed");
    return;
  }
  bool holds = false;
  for (auto _ : state) {
    auto solution = SolveCorridorTiling(instance);
    auto rem = TilingEncodingRem(instance, *solution.ValueOrDie());
    BinaryRelation result =
        EvaluateRem(reduction.value().graph, rem.ValueOrDie());
    BinaryRelation expected(reduction.value().graph.NumNodes());
    expected.Set(reduction.value().p2, reduction.value().q2);
    holds = result == expected;
    benchmark::DoNotOptimize(holds);
  }
  state.counters["width_bits"] = static_cast<double>(state.range(0));
  state.counters["defines_p2q2"] = holds ? 1 : 0;
}
BENCHMARK(BM_TilingForwardDirection)->DenseRange(1, 2);

void BM_TilingSolver(benchmark::State& state) {
  TilingInstance instance =
      MakeInstance(static_cast<std::size_t>(state.range(0)), 3);
  bool solvable = false;
  for (auto _ : state) {
    auto solution = SolveCorridorTiling(instance);
    benchmark::DoNotOptimize(solution);
    solvable = solution.ValueOrDie().has_value();
  }
  state.counters["width_bits"] = static_cast<double>(state.range(0));
  state.counters["solvable"] = solvable ? 1 : 0;
}
BENCHMARK(BM_TilingSolver)->DenseRange(1, 3);

void BM_SatReductionSize(benchmark::State& state) {
  CnfFormula f = RandomThreeCnf(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)),
                                31337);
  std::size_t nodes = 0, edges = 0;
  for (auto _ : state) {
    auto reduction = BuildSatReduction(f);
    benchmark::DoNotOptimize(reduction);
    nodes = reduction.ValueOrDie().graph.NumNodes();
    edges = reduction.ValueOrDie().graph.NumEdges();
  }
  state.counters["variables"] = static_cast<double>(state.range(0));
  state.counters["clauses"] = static_cast<double>(state.range(1));
  state.counters["graph_nodes"] = static_cast<double>(nodes);
  state.counters["graph_edges"] = static_cast<double>(edges);
}
BENCHMARK(BM_SatReductionSize)
    ->ArgsProduct({{3, 6, 12}, {4, 8, 16}});

void BM_DpllSolver(benchmark::State& state) {
  CnfFormula f = RandomThreeCnf(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(0)) * 4,
                                424242);
  bool sat = false;
  for (auto _ : state) {
    auto result = SolveCnf(f);
    benchmark::DoNotOptimize(result);
    sat = result.ValueOrDie().has_value();
  }
  state.counters["variables"] = static_cast<double>(state.range(0));
  state.counters["satisfiable"] = sat ? 1 : 0;
}
BENCHMARK(BM_DpllSolver)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

}  // namespace
}  // namespace gqd
