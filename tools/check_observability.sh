#!/usr/bin/env bash
# End-to-end observability check, run by CI's observability job and usable
# locally against a Release build:
#
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#   tools/check_observability.sh build [out-dir]
#
# 1. Runs a traced `gqd check` (frontier-parallel k-REM) and validates the
#    Chrome trace-event JSON: schema of every event, stage totals present,
#    and per-generation BFS spans summing to within 10% of the reported
#    krem.bfs wall time.
# 2. Starts `gqd serve`, exercises a trace:true eval and the `metrics`
#    command over a real socket, and validates the Prometheus text
#    exposition line-by-line (scrape format).
#
# Artifacts (trace JSON + metrics text) land in the output directory.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-obs-artifacts}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
GQD="${BUILD_DIR}/tools/gqd"

if [[ ! -x "${GQD}" ]]; then
  echo "error: ${GQD} not found — build gqd_cli first" >&2
  exit 1
fi
mkdir -p "${OUT_DIR}"

GRAPH="${REPO_ROOT}/examples/data/social_network.graph"
RELATION="${REPO_ROOT}/examples/data/movie_link.pairs"
TRACE="${OUT_DIR}/check_trace.json"

echo "== traced gqd check (k-REM, 2 threads) =="
"${GQD}" check "${GRAPH}" "${RELATION}" --language rem --k 2 --threads 2 \
  --trace-out "${TRACE}"

python3 - "${TRACE}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

events = trace["traceEvents"]
assert events, "trace has no events"
for e in events:
    # Chrome trace-event complete-event schema.
    assert isinstance(e["name"], str) and e["name"], e
    assert e["cat"] == "gqd", e
    assert e["ph"] == "X", e
    assert isinstance(e["ts"], (int, float)), e
    assert isinstance(e["dur"], (int, float)), e
    assert e["pid"] == 1, e
    assert isinstance(e["tid"], int), e
    assert isinstance(e["args"], dict), e
assert trace["displayTimeUnit"] == "ms"
assert isinstance(trace["gqdDroppedSpans"], int)
totals = trace["gqdStageTotals"]
for name, t in totals.items():
    assert t["count"] > 0 and t["total_ns"] >= 0, (name, t)

by_name = {}
for e in events:
    by_name.setdefault(e["name"], []).append(e)
for required in ("krem.bfs", "krem.bfs_generation",
                 "krem.assignment_graph_build", "krem.generate_batch"):
    assert required in by_name, f"missing span {required}: {sorted(by_name)}"

bfs = by_name["krem.bfs"][0]["dur"]
generations = sum(e["dur"] for e in by_name["krem.bfs_generation"])
ratio = generations / bfs if bfs else 0.0
print(f"krem.bfs = {bfs:.1f} us, generation spans sum = {generations:.1f} us"
      f" ({ratio:.1%})")
assert 0.9 <= ratio <= 1.0, (
    f"per-generation spans sum to {ratio:.1%} of krem.bfs wall time "
    "(acceptance bound: within 10%)")
print("trace schema OK")
EOF

echo "== gqd serve: trace:true + metrics over a socket =="
SERVE_LOG="${OUT_DIR}/serve.log"
"${GQD}" serve --port 0 --graph "${GRAPH}" > "${SERVE_LOG}" 2>/dev/null &
SERVE_PID=$!
trap 'kill "${SERVE_PID}" 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's/^listening 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "${SERVE_LOG}" 2>/dev/null || true)"
  [[ -n "${PORT}" ]] && break
  sleep 0.1
done
if [[ -z "${PORT}" ]]; then
  echo "error: server did not report a port" >&2
  exit 1
fi

python3 - "${PORT}" "${OUT_DIR}/metrics.txt" <<'EOF'
import json
import re
import socket
import sys

port, metrics_path = int(sys.argv[1]), sys.argv[2]


def call(request):
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall((json.dumps(request) + "\n").encode())
        data = b""
        while not data.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    return json.loads(data.decode())

# Traced eval: the inline span tree must cover admission, cache lookup,
# and the handler, nested under serve.request.
traced = call({"cmd": "eval", "graph": "social_network", "language": "rpq",
               "query": "follows+", "trace": True})
assert traced["ok"], traced
tree = traced["trace"]
assert isinstance(tree, list) and tree, traced
names = set()


def walk(nodes):
    for node in nodes:
        names.add(node["name"])
        walk(node["children"])


walk(tree)
for required in ("serve.request", "serve.admission", "serve.cache_lookup",
                 "serve.handler"):
    assert required in names, f"missing {required} in {sorted(names)}"
print("trace:true span tree OK:", ", ".join(sorted(names)))

# A second identical eval must hit the result cache.
again = call({"cmd": "eval", "graph": "social_network", "language": "rpq",
              "query": "follows+", "trace": True})
assert '"hit":1' in json.dumps(again, separators=(",", ":")), again

# Prometheus exposition: validate every line against the scrape format.
response = call({"cmd": "metrics"})
assert response["ok"], response
text = response["metrics"]
with open(metrics_path, "w") as f:
    f.write(text)
assert text.endswith("\n"), "exposition must end with a newline"
sample_re = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? '
    r'-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$')
type_re = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")
families = set()
for line in text.splitlines():
    if line.startswith("# TYPE"):
        assert type_re.match(line), f"bad TYPE line: {line!r}"
        families.add(line.split()[2])
    else:
        assert sample_re.match(line), f"bad sample line: {line!r}"
for required in ("gqd_requests_total", "gqd_request_latency_us",
                 "gqd_command_requests_total", "gqd_cache_hits_total",
                 "gqd_pool_threads", "gqd_admission_admitted_total",
                 "gqd_budget_exhausted_total",
                 "gqd_failpoint_triggered_total",
                 "gqd_plan_builds_total",
                 "gqd_plan_kernel_hits_total"):
    assert required in families, f"missing family {required}"
print(f"metrics exposition OK ({len(families)} families)")

call({"cmd": "shutdown"})
EOF

wait "${SERVE_PID}" || true
trap - EXIT
echo "observability check passed; artifacts in ${OUT_DIR}/"
