#!/usr/bin/env bash
# End-to-end observability check, run by CI's observability job and usable
# locally against a Release build:
#
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#   tools/check_observability.sh build [out-dir]
#
# 1. Runs a traced `gqd check` (frontier-parallel k-REM) and validates the
#    Chrome trace-event JSON: schema of every event, stage totals present,
#    and per-generation BFS spans summing to within 10% of the reported
#    krem.bfs wall time.
# 2. Starts `gqd serve`, exercises a trace:true eval and the `metrics`
#    command over a real socket, and validates the Prometheus text
#    exposition line-by-line (scrape format).
# 3. Starts a two-worker `gqd route` cluster, validates that a traced
#    routed eval returns ONE merged span tree (router + worker spans under
#    one trace id), that router stats carry per-command quantiles and
#    tail-sampled exemplars, that SIGKILLing the serving worker yields a
#    failover with zero client-visible errors plus a trace-correlated
#    structured log event, and that --trace-out writes a merged Chrome
#    trace with one process track per participant.
#
# Artifacts (trace JSONs + metrics text) land in the output directory.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-obs-artifacts}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
GQD="${BUILD_DIR}/tools/gqd"

if [[ ! -x "${GQD}" ]]; then
  echo "error: ${GQD} not found — build gqd_cli first" >&2
  exit 1
fi
mkdir -p "${OUT_DIR}"

GRAPH="${REPO_ROOT}/examples/data/social_network.graph"
RELATION="${REPO_ROOT}/examples/data/movie_link.pairs"
TRACE="${OUT_DIR}/check_trace.json"

echo "== traced gqd check (k-REM, 2 threads) =="
"${GQD}" check "${GRAPH}" "${RELATION}" --language rem --k 2 --threads 2 \
  --trace-out "${TRACE}"

python3 - "${TRACE}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

events = trace["traceEvents"]
assert events, "trace has no events"
for e in events:
    # Chrome trace-event complete-event schema.
    assert isinstance(e["name"], str) and e["name"], e
    assert e["cat"] == "gqd", e
    assert e["ph"] == "X", e
    assert isinstance(e["ts"], (int, float)), e
    assert isinstance(e["dur"], (int, float)), e
    assert e["pid"] == 1, e
    assert isinstance(e["tid"], int), e
    assert isinstance(e["args"], dict), e
assert trace["displayTimeUnit"] == "ms"
assert isinstance(trace["gqdDroppedSpans"], int)
totals = trace["gqdStageTotals"]
for name, t in totals.items():
    assert t["count"] > 0 and t["total_ns"] >= 0, (name, t)

by_name = {}
for e in events:
    by_name.setdefault(e["name"], []).append(e)
for required in ("krem.bfs", "krem.bfs_generation",
                 "krem.assignment_graph_build", "krem.generate_batch"):
    assert required in by_name, f"missing span {required}: {sorted(by_name)}"

bfs = by_name["krem.bfs"][0]["dur"]
generations = sum(e["dur"] for e in by_name["krem.bfs_generation"])
ratio = generations / bfs if bfs else 0.0
print(f"krem.bfs = {bfs:.1f} us, generation spans sum = {generations:.1f} us"
      f" ({ratio:.1%})")
assert 0.9 <= ratio <= 1.0, (
    f"per-generation spans sum to {ratio:.1%} of krem.bfs wall time "
    "(acceptance bound: within 10%)")
print("trace schema OK")
EOF

echo "== gqd serve: trace:true + metrics over a socket =="
SERVE_LOG="${OUT_DIR}/serve.log"
"${GQD}" serve --port 0 --graph "${GRAPH}" > "${SERVE_LOG}" 2>/dev/null &
SERVE_PID=$!
trap 'kill "${SERVE_PID}" 2>/dev/null || true' EXIT

PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's/^listening 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
    "${SERVE_LOG}" 2>/dev/null || true)"
  [[ -n "${PORT}" ]] && break
  sleep 0.1
done
if [[ -z "${PORT}" ]]; then
  echo "error: server did not report a port" >&2
  exit 1
fi

python3 - "${PORT}" "${OUT_DIR}/metrics.txt" <<'EOF'
import json
import re
import socket
import sys

port, metrics_path = int(sys.argv[1]), sys.argv[2]


def call(request):
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall((json.dumps(request) + "\n").encode())
        data = b""
        while not data.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    return json.loads(data.decode())

# Traced eval: the inline span tree must cover admission, cache lookup,
# and the handler, nested under serve.request.
traced = call({"cmd": "eval", "graph": "social_network", "language": "rpq",
               "query": "follows+", "trace": True})
assert traced["ok"], traced
tree = traced["trace"]
assert isinstance(tree, list) and tree, traced
names = set()


def walk(nodes):
    for node in nodes:
        names.add(node["name"])
        walk(node["children"])


walk(tree)
for required in ("serve.request", "serve.admission", "serve.cache_lookup",
                 "serve.handler"):
    assert required in names, f"missing {required} in {sorted(names)}"
print("trace:true span tree OK:", ", ".join(sorted(names)))

# A second identical eval must hit the result cache.
again = call({"cmd": "eval", "graph": "social_network", "language": "rpq",
              "query": "follows+", "trace": True})
assert '"hit":1' in json.dumps(again, separators=(",", ":")), again

# Prometheus exposition: validate every line against the scrape format.
response = call({"cmd": "metrics"})
assert response["ok"], response
text = response["metrics"]
with open(metrics_path, "w") as f:
    f.write(text)
assert text.endswith("\n"), "exposition must end with a newline"
sample_re = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? '
    r'-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$')
type_re = re.compile(
    r"^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$")
families = set()
for line in text.splitlines():
    if line.startswith("# TYPE"):
        assert type_re.match(line), f"bad TYPE line: {line!r}"
        families.add(line.split()[2])
    else:
        assert sample_re.match(line), f"bad sample line: {line!r}"
for required in ("gqd_requests_total", "gqd_request_latency_us",
                 "gqd_command_requests_total", "gqd_cache_hits_total",
                 "gqd_pool_threads", "gqd_admission_admitted_total",
                 "gqd_budget_exhausted_total",
                 "gqd_failpoint_triggered_total",
                 "gqd_plan_builds_total",
                 "gqd_plan_kernel_hits_total"):
    assert required in families, f"missing family {required}"
print(f"metrics exposition OK ({len(families)} families)")

call({"cmd": "shutdown"})
EOF

wait "${SERVE_PID}" || true
trap - EXIT

echo "== gqd route: merged cluster trace, stats, failover log event =="
W1_LOG="${OUT_DIR}/worker1.log"
W2_LOG="${OUT_DIR}/worker2.log"
ROUTE_LOG="${OUT_DIR}/route.log"
CLUSTER_TRACE="${OUT_DIR}/cluster_trace.json"

port_from_log() {
  local log="$1" port=""
  for _ in $(seq 1 50); do
    port="$(sed -n 's/^listening 127\.0\.0\.1:\([0-9]*\)$/\1/p' \
      "${log}" 2>/dev/null || true)"
    [[ -n "${port}" ]] && break
    sleep 0.1
  done
  echo "${port}"
}

# disown keeps bash from reporting the deliberate SIGKILL mid-check.
"${GQD}" serve --port 0 > "${W1_LOG}" 2>/dev/null &
W1_PID=$!
disown "${W1_PID}"
"${GQD}" serve --port 0 > "${W2_LOG}" 2>/dev/null &
W2_PID=$!
disown "${W2_PID}"
trap 'kill "${W1_PID}" "${W2_PID}" "${ROUTE_PID:-}" 2>/dev/null || true' EXIT

W1_PORT="$(port_from_log "${W1_LOG}")"
W2_PORT="$(port_from_log "${W2_LOG}")"
if [[ -z "${W1_PORT}" || -z "${W2_PORT}" ]]; then
  echo "error: workers did not report ports" >&2
  exit 1
fi

"${GQD}" route --worker "${W1_PORT}" --worker "${W2_PORT}" --replication 2 \
  --graph "${GRAPH}" --port 0 --trace-out "${CLUSTER_TRACE}" \
  > "${ROUTE_LOG}" 2>/dev/null &
ROUTE_PID=$!
ROUTE_PORT="$(port_from_log "${ROUTE_LOG}")"
if [[ -z "${ROUTE_PORT}" ]]; then
  echo "error: router did not report a port" >&2
  exit 1
fi

python3 - "${ROUTE_PORT}" "${W1_PID}" "${W2_PID}" <<'EOF'
import json
import os
import re
import signal
import socket
import sys
import time

port = int(sys.argv[1])
worker_pids = [int(sys.argv[2]), int(sys.argv[3])]


def call(request):
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall((json.dumps(request) + "\n").encode())
        data = b""
        while not data.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    return json.loads(data.decode())

# A traced routed eval returns one merged cross-process span tree.
traced = call({"cmd": "eval", "graph": "social_network", "language": "rpq",
               "query": "follows+", "trace": True})
assert traced["ok"], traced
assert re.fullmatch(r"[0-9a-f]{32}", traced["trace_id"]), traced
assert traced["served_by"] in (0, 1), traced
assert traced["failovers"] == 0, traced
tree = traced["trace"]
assert isinstance(tree, list) and tree, traced

names, sources = set(), set()


def walk(nodes):
    for node in nodes:
        for key in ("name", "start_us", "dur_us", "tid", "source", "args",
                    "children"):
            assert key in node, node
        names.add(node["name"])
        sources.add(node["source"])
        walk(node["children"])


walk(tree)
for required in ("route.request", "route.replica_pick", "route.transport",
                 "serve.request", "serve.handler"):
    assert required in names, f"missing span {required}: {sorted(names)}"
assert "router" in sources, sources
assert any(s.startswith("worker ") for s in sources), sources
print("merged trace OK: router + worker spans under one trace id,",
      "sources:", ", ".join(sorted(sources)))

# Router stats: per-command latency quantiles + tail-sampled exemplars.
stats = call({"cmd": "stats"})
assert stats["ok"], stats
eval_latency = stats["cluster"]["per_command_latency_us"]["eval"]
assert eval_latency["count"] >= 1, stats
assert eval_latency["p99"] >= eval_latency["p50"], stats
exemplars = stats["exemplars"]["eval"]
assert exemplars and re.fullmatch(r"[0-9a-f]{32}",
                                  exemplars[0]["trace_id"]), stats
assert isinstance(exemplars[0]["trace"], list), stats
print("router stats OK: per-command quantiles + exemplars")

# SIGKILL the worker that served the traced request. Failover must be
# invisible to the client and logged as a structured, trace-correlated
# event.
os.kill(worker_pids[traced["served_by"]], signal.SIGKILL)
failover_trace = None
for _ in range(20):
    response = call({"cmd": "eval", "graph": "social_network",
                     "language": "rpq", "query": "follows+"})
    assert response["ok"], response  # zero client-visible errors
    if response.get("failovers", 0) >= 1:
        failover_trace = response["trace_id"]
        break
    time.sleep(0.02)
assert failover_trace, "no request failed over after the worker kill"

log = call({"cmd": "log"})
assert log["ok"], log
correlated = [e for e in log["events"]
              if e["event"] == "failover"
              and e.get("trace_id") == failover_trace]
assert correlated, (failover_trace, log["events"])
event = correlated[0]
assert event["level"] == "warn" and event["component"] == "cluster", event
assert event["cmd"] == "eval" and "to_worker" in event, event
print("failover OK: zero client errors, structured event correlated to",
      failover_trace)

call({"cmd": "shutdown"})
EOF

wait "${ROUTE_PID}" || true
kill "${W1_PID}" "${W2_PID}" 2>/dev/null || true
trap - EXIT

python3 - "${CLUSTER_TRACE}" <<'EOF'
import json
import sys

with open(sys.argv[1]) as f:
    trace = json.load(f)

events = trace["traceEvents"]
pids = {e["pid"] for e in events if e.get("ph") == "X"}
assert len(pids) >= 2, f"expected router + worker tracks, got pids {pids}"
tracks = {e["pid"]: e["args"]["name"] for e in events
          if e.get("ph") == "M" and e.get("name") == "process_name"}
assert tracks.get(1) == "router", tracks
assert any(name.startswith("worker ") for name in tracks.values()), tracks
print(f"cluster trace-out OK: {len(events)} events"
      f" across {len(pids)} process tracks")
EOF

echo "observability check passed; artifacts in ${OUT_DIR}/"
