#!/usr/bin/env bash
# Runs the definability benchmark suite and writes BENCH_results.json at the
# repo root: wall time, tuples/sec (or monoid elements/sec) and peak tuple
# counts per benchmark, plus speedups over the persisted pre-kernel baseline
# for the three standard medium workloads. CI's perf-smoke leg runs this and
# uploads the JSON as an artifact; run it locally from a Release build:
#
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#   tools/run_benches.sh build

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${REPO_ROOT}/BENCH_results.json"
MIN_TIME="${GQD_BENCH_MIN_TIME:-0.2}"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

for bench in bench_rem_definability bench_ree_definability; do
  bin="${BUILD_DIR}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not found — build the repo first" >&2
    exit 1
  fi
  # GQD_TRACE_OUT makes the binary's static trace hook record stage spans
  # and dump a Chrome trace at exit; its gqdStageTotals block feeds the
  # per-stage wall summaries attached to BENCH_results.json below.
  GQD_TRACE_OUT="${TMP_DIR}/${bench}.trace.json" \
    "${bin}" --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
    > "${TMP_DIR}/${bench}.json"
done

python3 - "${TMP_DIR}" "${OUT}" <<'EOF'
import json
import sys

tmp_dir, out_path = sys.argv[1], sys.argv[2]

# Pre-kernel-rewrite wall times (ms, Release) for the standard medium
# workloads — the baseline the word-parallel successor kernels are measured
# against. Re-pin these when the workloads themselves change.
BASELINE_MS = {
    "BM_KRemDefinability_SweepN/7": 13.132,
    "BM_KRemDefinability_WithCycle": 5.891,
    "BM_ReeDefinability_SweepDensity/40": 4545.422,
}

results = []
stage_totals = {}
for bench in ("bench_rem_definability", "bench_ree_definability"):
    with open(f"{tmp_dir}/{bench}.json") as f:
        data = json.load(f)
    # Per-stage wall totals from the tracer (exact even under ring
    # overflow), keyed by span name; ms to match wall_ms above.
    try:
        with open(f"{tmp_dir}/{bench}.trace.json") as f:
            trace = json.load(f)
        stage_totals[bench] = {
            name: {"count": t["count"], "wall_ms": t["total_ns"] / 1e6}
            for name, t in trace.get("gqdStageTotals", {}).items()
        }
        if trace.get("gqdDroppedSpans"):
            stage_totals[bench]["_dropped_spans"] = trace["gqdDroppedSpans"]
    except (OSError, ValueError):
        pass  # tracing compiled out or trace file missing
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "suite": bench,
            "name": b["name"],
            "wall_ms": b["real_time"] / 1e6,
            "cpu_ms": b["cpu_time"] / 1e6,
            "iterations": b["iterations"],
        }
        for counter in ("macro_tuples", "monoid_size", "tuples_per_sec",
                        "elements_per_sec", "levels", "verdict"):
            if counter in b:
                entry[counter] = b[counter]
        results.append(entry)

medium = {}
for entry in results:
    baseline = BASELINE_MS.get(entry["name"])
    if baseline is not None:
        medium[entry["name"]] = {
            "wall_ms": entry["wall_ms"],
            "baseline_ms": baseline,
            "speedup": baseline / entry["wall_ms"],
        }

# *_Plan/*_NoPlan pairs are same-workload ablations of the query-plan
# kernel dispatch; pair them into speedup records (NoPlan is the
# word-parallel generic engine the planned engine downgrades to).
plan_dispatch = {}
by_name = {e["name"]: e for e in results}
for name, entry in by_name.items():
    if not name.endswith("_Plan"):
        continue
    generic = by_name.get(name[: -len("_Plan")] + "_NoPlan")
    if generic is None:
        continue
    plan_dispatch[name[: -len("_Plan")]] = {
        "planned_ms": entry["wall_ms"],
        "generic_ms": generic["wall_ms"],
        "speedup": generic["wall_ms"] / entry["wall_ms"],
    }

with open(out_path, "w") as f:
    json.dump(
        {
            "generated_by": "tools/run_benches.sh",
            "baseline": "pre word-parallel kernel rewrite (Release)",
            "medium_configs": medium,
            "plan_dispatch": plan_dispatch,
            "benchmarks": results,
            "trace_stage_totals": stage_totals,
        },
        f,
        indent=2,
    )
    f.write("\n")

for name, m in sorted(medium.items()):
    print(f"{name}: {m['wall_ms']:.3f} ms "
          f"(baseline {m['baseline_ms']:.3f} ms, {m['speedup']:.2f}x)")
for name, m in sorted(plan_dispatch.items()):
    print(f"{name}: planned {m['planned_ms']:.3f} ms vs generic "
          f"{m['generic_ms']:.3f} ms ({m['speedup']:.2f}x)")
print(f"wrote {out_path}")
EOF
