#!/usr/bin/env bash
# Runs the definability benchmark suite and writes BENCH_results.json at the
# repo root: wall time, tuples/sec (or monoid elements/sec) and peak tuple
# counts per benchmark, plus speedups over the persisted pre-kernel baseline
# for the three standard medium workloads. CI's perf-smoke leg runs this and
# uploads the JSON as an artifact; run it locally from a Release build:
#
#   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release && cmake --build build -j
#   tools/run_benches.sh build

set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="${REPO_ROOT}/BENCH_results.json"
MIN_TIME="${GQD_BENCH_MIN_TIME:-0.2}"
TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

for bench in bench_rem_definability bench_ree_definability; do
  bin="${BUILD_DIR}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: ${bin} not found — build the repo first" >&2
    exit 1
  fi
  # GQD_TRACE_OUT makes the binary's static trace hook record stage spans
  # and dump a Chrome trace at exit; its gqdStageTotals block feeds the
  # per-stage wall summaries attached to BENCH_results.json below.
  GQD_TRACE_OUT="${TMP_DIR}/${bench}.trace.json" \
    "${bin}" --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
    > "${TMP_DIR}/${bench}.json"
done

# Storage: mmap vs text-parse load cost on a SIDE×SIDE grid (default 1000,
# i.e. a million nodes). Each `info --json` run is a fresh process, so its
# storage block and peak_rss_kb isolate one loading path; the python merge
# below turns the pair into the load-speedup / RSS-delta record.
GQD_BIN="${BUILD_DIR}/tools/gqd"
SIDE="${GQD_STORAGE_SIDE:-1000}"
if [[ -x "${GQD_BIN}" ]]; then
  "${GQD_BIN}" gen grid --rows "${SIDE}" --cols "${SIDE}" --seed 1 \
    --out "${TMP_DIR}/grid.gqdg" 2> /dev/null
  "${GQD_BIN}" convert graph "${TMP_DIR}/grid.gqdg" --validate > /dev/null
  "${GQD_BIN}" convert graph "${TMP_DIR}/grid.gqdg" "${TMP_DIR}/grid.graph" \
    2> /dev/null
  "${GQD_BIN}" info "${TMP_DIR}/grid.graph" --json \
    > "${TMP_DIR}/storage_text.json"
  "${GQD_BIN}" info "${TMP_DIR}/grid.gqdg" --json \
    > "${TMP_DIR}/storage_mmap.json"
else
  echo "warning: ${GQD_BIN} not found — skipping the storage benchmark" >&2
fi

# Relations: the density-adaptive layer vs the dense matrix. Two probes:
# a medium grid where every backend runs (wall + RSS per backend), and the
# million-node grid where the dense matrix is refused under the byte budget
# the sparse backend completes in. The relation is R_{a.b} (--word), so the
# rpq check terminates with a definable verdict at any scale.
if [[ -x "${GQD_BIN}" ]]; then
  REL_SIDE="${GQD_RELATION_SIDE:-100}"
  REL_BUDGET="${GQD_RELATION_BUDGET:-400000000}"
  "${GQD_BIN}" gen grid --rows "${REL_SIDE}" --cols "${REL_SIDE}" --seed 1 \
    --out "${TMP_DIR}/rel_grid.gqdg" 2> /dev/null
  "${GQD_BIN}" gen relation --graph "${TMP_DIR}/rel_grid.gqdg" \
    --out "${TMP_DIR}/rel_grid.gqdr" --word a.b 2> /dev/null
  for backend in dense sparse blocked; do
    "${GQD_BIN}" check "${TMP_DIR}/rel_grid.gqdg" "${TMP_DIR}/rel_grid.gqdr" \
      --language rpq --relation-backend "${backend}" --json \
      > "${TMP_DIR}/relation_${backend}.json"
  done
  if [[ -f "${TMP_DIR}/grid.gqdg" ]]; then
    "${GQD_BIN}" gen relation --graph "${TMP_DIR}/grid.gqdg" \
      --out "${TMP_DIR}/grid_rel.gqdr" --word a.b 2> /dev/null
    "${GQD_BIN}" check "${TMP_DIR}/grid.gqdg" "${TMP_DIR}/grid_rel.gqdr" \
      --language rpq --relation-backend sparse --max-bytes "${REL_BUDGET}" \
      --json > "${TMP_DIR}/relation_million.json" \
      || echo "warning: million-node sparse check failed" >&2
    # The same budget must refuse the dense matrix: record exit code (4)
    # and the admission estimate from the refusal message.
    set +e
    "${GQD_BIN}" check "${TMP_DIR}/grid.gqdg" "${TMP_DIR}/grid_rel.gqdr" \
      --language rpq --relation-backend dense --max-bytes "${REL_BUDGET}" \
      > /dev/null 2> "${TMP_DIR}/relation_million_dense.err"
    echo $? > "${TMP_DIR}/relation_million_dense.rc"
    set -e
  fi
fi

# Cluster serving: the same client workload against a 1-worker and a
# 4-worker fleet behind the router. Workers model a fixed service time per
# query, so fleet throughput scales with worker count even on a single-core
# host; the pin below guards the router's sharded placement + replica
# read-spreading from regressing to a single hot primary.
if [[ -x "${GQD_BIN}" ]]; then
  "${GQD_BIN}" bench-serve --workers 1 --clients 16 --requests 200 --json \
    > "${TMP_DIR}/cluster_w1.json" \
    || echo "warning: 1-worker cluster bench failed" >&2
  "${GQD_BIN}" bench-serve --workers 4 --clients 16 --requests 200 --json \
    > "${TMP_DIR}/cluster_w4.json" \
    || echo "warning: 4-worker cluster bench failed" >&2
fi

python3 - "${TMP_DIR}" "${OUT}" <<'EOF'
import json
import sys

tmp_dir, out_path = sys.argv[1], sys.argv[2]

# Pre-kernel-rewrite wall times (ms, Release) for the standard medium
# workloads — the baseline the word-parallel successor kernels are measured
# against. Re-pin these when the workloads themselves change.
BASELINE_MS = {
    "BM_KRemDefinability_SweepN/7": 13.132,
    "BM_KRemDefinability_WithCycle": 5.891,
    "BM_ReeDefinability_SweepDensity/40": 4545.422,
}

results = []
stage_totals = {}
for bench in ("bench_rem_definability", "bench_ree_definability"):
    with open(f"{tmp_dir}/{bench}.json") as f:
        data = json.load(f)
    # Per-stage wall totals from the tracer (exact even under ring
    # overflow), keyed by span name; ms to match wall_ms above.
    try:
        with open(f"{tmp_dir}/{bench}.trace.json") as f:
            trace = json.load(f)
        stage_totals[bench] = {
            name: {"count": t["count"], "wall_ms": t["total_ns"] / 1e6}
            for name, t in trace.get("gqdStageTotals", {}).items()
        }
        if trace.get("gqdDroppedSpans"):
            stage_totals[bench]["_dropped_spans"] = trace["gqdDroppedSpans"]
    except (OSError, ValueError):
        pass  # tracing compiled out or trace file missing
    for b in data["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        entry = {
            "suite": bench,
            "name": b["name"],
            "wall_ms": b["real_time"] / 1e6,
            "cpu_ms": b["cpu_time"] / 1e6,
            "iterations": b["iterations"],
        }
        for counter in ("macro_tuples", "monoid_size", "tuples_per_sec",
                        "elements_per_sec", "levels", "verdict"):
            if counter in b:
                entry[counter] = b[counter]
        results.append(entry)

medium = {}
for entry in results:
    baseline = BASELINE_MS.get(entry["name"])
    if baseline is not None:
        medium[entry["name"]] = {
            "wall_ms": entry["wall_ms"],
            "baseline_ms": baseline,
            "speedup": baseline / entry["wall_ms"],
        }

# *_Plan/*_NoPlan pairs are same-workload ablations of the query-plan
# kernel dispatch; pair them into speedup records (NoPlan is the
# word-parallel generic engine the planned engine downgrades to).
plan_dispatch = {}
by_name = {e["name"]: e for e in results}
for name, entry in by_name.items():
    if not name.endswith("_Plan"):
        continue
    generic = by_name.get(name[: -len("_Plan")] + "_NoPlan")
    if generic is None:
        continue
    plan_dispatch[name[: -len("_Plan")]] = {
        "planned_ms": entry["wall_ms"],
        "generic_ms": generic["wall_ms"],
        "speedup": generic["wall_ms"] / entry["wall_ms"],
    }

# Storage backend comparison: one process per loading path, so each
# peak_rss_kb reflects only that path's footprint.
storage = {}
try:
    with open(f"{tmp_dir}/storage_text.json") as f:
        text = json.load(f)
    with open(f"{tmp_dir}/storage_mmap.json") as f:
        mmap = json.load(f)
    def side(info):
        s = info["storage"]
        return {
            "backend": s["backend"],
            "load_ms": s["load_micros"] / 1e3,
            "source_bytes": s["source_bytes"],
            "resident_bytes": s["resident_bytes"],
            "peak_rss_kb": info["peak_rss_kb"],
        }
    storage = {
        "workload": f"grid {text['nodes']} nodes / {text['edges']} edges",
        "text": side(text),
        "mmap": side(mmap),
        "load_speedup": (text["storage"]["load_micros"]
                         / max(mmap["storage"]["load_micros"], 1)),
        "peak_rss_delta_kb": text["peak_rss_kb"] - mmap["peak_rss_kb"],
    }
except (OSError, ValueError, KeyError):
    pass  # storage leg skipped (gqd binary missing)

# Relation backends: per-backend wall/RSS on the medium grid, plus the
# million-node record (sparse admitted, dense refused). The pinned factor
# plays the role BASELINE_MS plays above: the dense matrix must cost at
# least this many times the adaptive representation's bytes, else the
# adaptive layer has regressed.
RELATION_MIN_BYTES_FACTOR = 8.0
sparse_relations = {}

def check_side(path):
    with open(path) as f:
        d = json.load(f)
    return {
        "backend": d["relation"]["backend"],
        "nnz": d["relation"]["nnz"],
        "relation_bytes": d["relation"]["bytes"],
        "wall_ms": d["wall_ms"],
        "peak_rss_kb": d["peak_rss_kb"],
        "verdicts": d["verdicts"],
    }

try:
    mid = {b: check_side(f"{tmp_dir}/relation_{b}.json")
           for b in ("dense", "sparse", "blocked")}
    bytes_factor = (mid["dense"]["relation_bytes"]
                    / max(mid["sparse"]["relation_bytes"], 1))
    sparse_relations["medium_grid"] = {
        **mid,
        "dense_vs_sparse_bytes_factor": bytes_factor,
        "dense_vs_sparse_wall_factor": (
            mid["dense"]["wall_ms"] / max(mid["sparse"]["wall_ms"], 1e-9)),
        "min_bytes_factor": RELATION_MIN_BYTES_FACTOR,
        "meets_pin": bytes_factor >= RELATION_MIN_BYTES_FACTOR,
        "verdicts_identical": len({json.dumps(s["verdicts"], sort_keys=True)
                                   for s in mid.values()}) == 1,
    }
except (OSError, ValueError, KeyError):
    pass  # relation leg skipped (gqd binary missing)

try:
    import re
    million = {"sparse": check_side(f"{tmp_dir}/relation_million.json")}
    with open(f"{tmp_dir}/relation_million_dense.rc") as f:
        million["dense_refusal_exit"] = int(f.read().strip())
    with open(f"{tmp_dir}/relation_million_dense.err") as f:
        m = re.search(r"estimated at (\d+) bytes", f.read())
    if m:
        million["dense_estimate_bytes"] = int(m.group(1))
        million["admitted_vs_refused_bytes_factor"] = (
            million["dense_estimate_bytes"]
            / max(million["sparse"]["relation_bytes"], 1))
    sparse_relations["million_grid"] = million
except (OSError, ValueError, KeyError):
    pass  # million-node leg skipped (storage leg disabled or check failed)

# Cluster scaling: 4 workers vs 1 on the identical sharded workload. Like
# RELATION_MIN_BYTES_FACTOR this is a pinned floor, not a measurement — if
# the router stops spreading reads across replicas or the bench collapses
# onto one primary, the speedup drops toward 1x and meets_pin flips.
CLUSTER_MIN_SPEEDUP = 2.5
cluster = {}
try:
    with open(f"{tmp_dir}/cluster_w1.json") as f:
        w1 = json.load(f)
    with open(f"{tmp_dir}/cluster_w4.json") as f:
        w4 = json.load(f)
    speedup = w4["throughput_rps"] / max(w1["throughput_rps"], 1e-9)
    cluster = {
        "workload": (f"{w4['clients']} clients x "
                     f"{w4['requests'] // max(w4['clients'], 1)} requests, "
                     "sharded rpq/check mix"),
        "workers_1_rps": w1["throughput_rps"],
        "workers_4_rps": w4["throughput_rps"],
        "speedup": speedup,
        "min_speedup": CLUSTER_MIN_SPEEDUP,
        "meets_pin": speedup >= CLUSTER_MIN_SPEEDUP,
        "errors": w1["errors"] + w4["errors"],
        "mismatches": w1["mismatches"] + w4["mismatches"],
        "worker_requests_4": w4["cluster"]["worker_requests"],
        "latency_p50_us_4": w4["latency_us"]["p50"],
        "latency_p99_us_4": w4["latency_us"]["p99"],
    }
except (OSError, ValueError, KeyError):
    pass  # cluster leg skipped (gqd binary missing or bench failed)

with open(out_path, "w") as f:
    json.dump(
        {
            "generated_by": "tools/run_benches.sh",
            "baseline": "pre word-parallel kernel rewrite (Release)",
            "medium_configs": medium,
            "plan_dispatch": plan_dispatch,
            "storage": storage,
            "sparse_relations": sparse_relations,
            "cluster": cluster,
            "benchmarks": results,
            "trace_stage_totals": stage_totals,
        },
        f,
        indent=2,
    )
    f.write("\n")

for name, m in sorted(medium.items()):
    print(f"{name}: {m['wall_ms']:.3f} ms "
          f"(baseline {m['baseline_ms']:.3f} ms, {m['speedup']:.2f}x)")
for name, m in sorted(plan_dispatch.items()):
    print(f"{name}: planned {m['planned_ms']:.3f} ms vs generic "
          f"{m['generic_ms']:.3f} ms ({m['speedup']:.2f}x)")
if storage:
    print(f"storage ({storage['workload']}): "
          f"text {storage['text']['load_ms']:.1f} ms vs "
          f"mmap {storage['mmap']['load_ms']:.1f} ms "
          f"({storage['load_speedup']:.1f}x), "
          f"peak RSS {storage['text']['peak_rss_kb']} kB vs "
          f"{storage['mmap']['peak_rss_kb']} kB")
if "medium_grid" in sparse_relations:
    mg = sparse_relations["medium_grid"]
    print(f"relations (medium grid): dense {mg['dense']['relation_bytes']} B "
          f"vs sparse {mg['sparse']['relation_bytes']} B "
          f"({mg['dense_vs_sparse_bytes_factor']:.1f}x, pin "
          f"{mg['min_bytes_factor']}x, "
          f"{'ok' if mg['meets_pin'] else 'REGRESSED'}), "
          f"verdicts identical: {mg['verdicts_identical']}")
if "million_grid" in sparse_relations:
    ml = sparse_relations["million_grid"]
    print(f"relations (million grid): sparse admitted "
          f"({ml['sparse']['wall_ms']:.0f} ms, "
          f"peak RSS {ml['sparse']['peak_rss_kb']} kB), dense refused "
          f"(exit {ml['dense_refusal_exit']})")
if cluster:
    print(f"cluster ({cluster['workload']}): "
          f"1 worker {cluster['workers_1_rps']:.0f} rps vs "
          f"4 workers {cluster['workers_4_rps']:.0f} rps "
          f"({cluster['speedup']:.2f}x, pin {cluster['min_speedup']}x, "
          f"{'ok' if cluster['meets_pin'] else 'REGRESSED'}), "
          f"errors {cluster['errors']}, mismatches {cluster['mismatches']}")
print(f"wrote {out_path}")
EOF
