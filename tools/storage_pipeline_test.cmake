# End-to-end storage pipeline, run as a CTest script:
#   gen grid -> container; deep-validate; container -> text -> container;
#   the re-serialized container and the canonical text must round-trip, and
#   eval output must be identical across the text and mmap backends.
#
# Invoked with -DGQD=<gqd binary> -DWORK=<scratch dir>.

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}\n${out}\n${err}")
  endif()
endfunction()

run(${GQD} gen grid --rows 25 --cols 25 --seed 3 --out ${WORK}/grid.gqdg)
run(${GQD} convert graph ${WORK}/grid.gqdg --validate)
run(${GQD} convert graph ${WORK}/grid.gqdg ${WORK}/grid.graph)
run(${GQD} convert graph ${WORK}/grid.graph ${WORK}/grid2.gqdg --validate)
run(${GQD} convert graph ${WORK}/grid2.gqdg ${WORK}/grid2.graph)

# Text round-trips byte-identically through the container.
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/grid.graph ${WORK}/grid2.graph
                RESULT_VARIABLE same)
if(NOT same EQUAL 0)
  message(FATAL_ERROR "text -> container -> text round-trip changed bytes")
endif()

# Relation containers: generate a sparse relation over the grid, round-trip
# it through the pair text format, and read it back through `info`.
run(${GQD} gen relation --graph ${WORK}/grid.gqdg --out ${WORK}/grid.gqdr
    --density 2 --seed 5)
run(${GQD} gen relation --graph ${WORK}/grid.gqdg --out ${WORK}/grid_ab.gqdr
    --word a.b)
run(${GQD} info ${WORK}/grid.gqdr)
run(${GQD} convert relation ${WORK}/grid.gqdg ${WORK}/grid.gqdr
    ${WORK}/grid.pairs)
run(${GQD} convert relation ${WORK}/grid.gqdg ${WORK}/grid.pairs
    ${WORK}/grid2.gqdr)
execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files
                ${WORK}/grid.gqdr ${WORK}/grid2.gqdr
                RESULT_VARIABLE rel_same)
if(NOT rel_same EQUAL 0)
  message(FATAL_ERROR "relation container -> text -> container changed bytes")
endif()

# Same query, both backends, identical results.
run(${GQD} eval ${WORK}/grid.graph regex "a b")
execute_process(COMMAND ${GQD} eval ${WORK}/grid.graph regex "a b"
                OUTPUT_VARIABLE text_out RESULT_VARIABLE rc1)
execute_process(COMMAND ${GQD} eval ${WORK}/grid.gqdg regex "a b"
                OUTPUT_VARIABLE mmap_out RESULT_VARIABLE rc2)
if(NOT rc1 EQUAL 0 OR NOT rc2 EQUAL 0)
  message(FATAL_ERROR "eval failed: text=${rc1} mmap=${rc2}")
endif()
if(NOT text_out STREQUAL mmap_out)
  message(FATAL_ERROR "eval differs between text and mmap backends")
endif()
