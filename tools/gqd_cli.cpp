// gqd — the command-line interface to the library.
//
//   gqd eval <graph> <regex|rem|ree> <expression> [--explain <u> <v>]
//            [--preflight] [--trace-out <file>]
//   gqd check <graph> <relation> [--language all|rpq|rem|ree|ucrdpq] [--k N]
//             [--relation-backend auto|dense|sparse|blocked] [--json]
//             [--trace-out <file>]
//   gqd synth <graph> <relation> --language rpq|rem|ree [--k N] [--simplify]
//   gqd convert <regex|ree> <expression>        # embed into REM
//   gqd convert graph <in> [<out>] [--validate] # text <-> binary container
//   gqd convert relation <graph> <in> <out>     # pair text <-> .gqdr
//   gqd gen scale-free|grid --out <file> [...]  # synthetic graphs
//   gqd gen relation --graph <file> --out FILE  # synthetic sparse relation
//   gqd compile <rem> [--graph <file>] [--k N] [--json] [--plan-out FILE]
//   gqd lint <regex|rem|ree> <expression> [--graph <file>] [--json]
//   gqd lint --suite <file> [--graph <file>] [--json]
//   gqd info <graph|relation> [--dot|--json]
//   gqd serve [--port N] [--threads N] [--cache N] [--graph <file>]...
//   gqd route --worker PORT [--worker PORT]... [--port N] [--replication R]
//   gqd bench-serve [--port N] [--clients C] [--requests R] [--json]
//              [--workers N [--replication R] [--service-ms MS]
//               [--chaos-kill]]
//
// Graph files use the `node`/`edge` text format or the binary .gqdg
// container; relation files the `pair` text format or the binary .gqdr
// container (see graph/serialization.h, docs/storage.md, examples/data/).

#include <sys/resource.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gqd.h"

namespace {

using namespace gqd;

/// Failure exit codes, keyed by status code so scripts can tell resource
/// exhaustion from deadlines from overload (documented in Usage()).
int ExitCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kResourceExhausted:
      return 4;
    case StatusCode::kDeadlineExceeded:  // also covers cancellation
      return 5;
    case StatusCode::kUnavailable:
      return 6;
    default:
      return 1;
  }
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gqd eval <graph> <regex|rem|ree> <expression> [--explain u v]"
      " [--preflight]\n"
      "           [--max-bytes N] [--max-tuples N] [--trace-out FILE]\n"
      "  gqd check <graph> <relation> [--language all|rpq|rem|ree|ucrdpq]"
      " [--k N]\n"
      "            [--threads N] [--engine kernel|reference]"
      " [--max-tuples N]\n"
      "            [--max-bytes N] [--relation-backend"
      " auto|dense|sparse|blocked]\n"
      "            [--json] [--trace-out FILE]\n"
      "  gqd synth <graph> <relation> --language rpq|rem|ree [--k N]"
      " [--simplify]\n"
      "            [--threads N] [--engine kernel|reference]"
      " [--max-bytes N]\n"
      "  gqd convert <regex|ree> <expression>\n"
      "  gqd convert graph <in> [<out>] [--validate]\n"
      "  gqd convert relation <graph> <in> <out>\n"
      "  gqd gen scale-free --out FILE [--nodes N] [--edges-per-node M]\n"
      "          [--labels L] [--values D] [--seed S] [--text]\n"
      "  gqd gen grid --out FILE [--rows R] [--cols C] [--values D]"
      " [--seed S]\n"
      "          [--text]\n"
      "  gqd gen relation --graph FILE --out FILE [--pairs N |"
      " --density D\n"
      "          | --word a.b] [--seed S] [--text]\n"
      "  gqd compile <rem-expression> [--graph <file>] [--k N] [--json]\n"
      "              [--plan-out FILE]\n"
      "  gqd lint <regex|rem|ree> <expression> [--graph <file>] [--json]"
      " [--no-notes]\n"
      "  gqd lint --suite <file> [--graph <file>] [--json]\n"
      "  gqd info <graph|relation> [--dot|--json]\n"
      "  gqd serve [--port N] [--threads N] [--cache N] [--graph <file>]..."
      "\n"
      "            [--max-concurrent N] [--max-queue N] [--retry-after-ms N]"
      "\n"
      "            [--max-line-bytes N]\n"
      "  gqd route --worker PORT [--worker PORT]... [--port N]\n"
      "            [--replication R] [--pool N] [--probe-interval-ms N]\n"
      "            [--suspect-threshold N] [--retry-after-ms N]\n"
      "            [--warm-log N] [--max-line-bytes N] [--graph <file>]...\n"
      "            [--exemplars N] [--trace-out FILE]\n"
      "  gqd bench-serve [--port N] [--clients C] [--requests R] [--json]\n"
      "                  [--max-concurrent N] [--max-queue N] [--retry]\n"
      "                  [--workers N] [--replication R] [--pool N]\n"
      "                  [--service-ms MS] [--chaos-kill]\n"
      "\n"
      "cluster serving:\n"
      "  `gqd route` fronts a fleet of `gqd serve` workers: requests are\n"
      "  consistent-hashed on graph fingerprint, each graph is loaded on R\n"
      "  replicas, health probes drive a healthy/suspect/dead/rejoining\n"
      "  state machine, and failed or shed requests fail over to replicas\n"
      "  (docs/runtime.md). `bench-serve --workers N` self-hosts a fleet\n"
      "  plus router; --chaos-kill kills and restarts the busiest worker\n"
      "  mid-run and reports failovers, warm replays and verdict\n"
      "  mismatches.\n"
      "\n"
      "storage:\n"
      "  every <graph> argument accepts either the node/edge text format or\n"
      "  a binary graph container (docs/storage.md); containers are mmap'd\n"
      "  and served zero-copy. `gqd convert graph` converts between the two\n"
      "  (direction follows the input format; --validate deep-checks the\n"
      "  container, and `convert graph <file> --validate` with no output\n"
      "  only checks). `gqd gen` streams synthetic graphs to a container.\n"
      "  every <relation> argument accepts the pair text format or a\n"
      "  binary relation container (.gqdr); `gqd convert relation`\n"
      "  converts between the two and `gqd gen relation` samples a\n"
      "  deterministic sparse relation over a graph.\n"
      "\n"
      "resource governance:\n"
      "  --max-bytes / --max-tuples cap accounted memory and materialized\n"
      "  tuples; an exceeded budget stops the search cleanly and reports\n"
      "  partial progress instead of exhausting host memory. `gqd check`\n"
      "  admits the relation by the estimated bytes of the selected\n"
      "  representation (--relation-backend, default auto), so sparse\n"
      "  relations over million-node graphs fit budgets the dense matrix\n"
      "  never could.\n"
      "\n"
      "observability:\n"
      "  --trace-out FILE writes a Chrome trace-event JSON of the stage\n"
      "  spans recorded during the command (open in chrome://tracing or\n"
      "  Perfetto); on `gqd route` the file holds *merged* cluster traces\n"
      "  (router + worker spans per sampled request, one process track\n"
      "  each), written at shutdown. routed eval/check responses carry\n"
      "  served_by and failovers; `\"trace\":true` on a routed request\n"
      "  returns the merged cross-process span tree. serve and route both\n"
      "  answer `log` (structured JSON event ring; configure with\n"
      "  GQD_LOG=level[:path]) and route keeps the slowest traces per\n"
      "  command (--exemplars N) in `stats`. workers answer `spans` — the\n"
      "  router's trace-drain command. see docs/observability.md.\n"
      "\n"
      "query compilation:\n"
      "  `gqd compile` runs the plan pass on a REM query: automaton\n"
      "  reachability/liveness analysis, dead-transition elimination, and —\n"
      "  with --graph — the kernel-dispatch census the checkers execute.\n"
      "  --plan-out FILE writes the dump to FILE (format per --json) and\n"
      "  prints a one-line summary instead; see docs/analysis.md.\n"
      "\n"
      "exit codes:\n"
      "  0 success      1 error          2 usage\n"
      "  3 not definable (synth)         4 resource budget exhausted\n"
      "  5 deadline exceeded/cancelled   6 server unavailable (overload)\n"
      "  7 lint found error-severity diagnostics\n");
  return 2;
}

/// Loads a graph file through the GraphStore: binary containers map
/// (zero-copy), anything else parses as the node/edge text format. The
/// StoredGraph keeps any backing mmap alive.
Result<StoredGraph> LoadGraph(const char* path) {
  return GraphStore::OpenFile(path);
}

/// True when the file starts with the container magic — decides the
/// direction of `gqd convert graph`.
bool IsGraphContainer(const char* path) {
  std::ifstream probe(path, std::ios::binary);
  std::uint32_t magic = 0;
  probe.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  return probe.gcount() == sizeof(magic) && magic == kGraphContainerMagic;
}

Result<BinaryRelation> LoadRelation(const DataGraph& graph,
                                    const char* path) {
  GQD_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ReadRelationText(graph, text);
}

/// The GraphStore surfaces fingerprints as 16 hex digits; the relation
/// container binds by the raw u64.
std::uint64_t FingerprintFromHex(const std::string& hex) {
  return std::strtoull(hex.c_str(), nullptr, 16);
}

/// Loads a relation as its canonical pair list without materializing any
/// representation: a .gqdr container is opened (validated, and checked
/// against the graph's fingerprint when bound), anything else parses as the
/// pair text format. O(nnz) memory either way.
Result<std::vector<std::pair<NodeId, NodeId>>> LoadRelationPairs(
    const DataGraph& graph, const std::string& graph_fingerprint,
    const char* path) {
  if (IsRelationContainerFile(path)) {
    GQD_ASSIGN_OR_RETURN(StoredRelation stored,
                         OpenRelationContainer(
                             path, FingerprintFromHex(graph_fingerprint)));
    if (stored.info.num_nodes != graph.NumNodes()) {
      return Status::InvalidArgument(
          "relation container is over " +
          std::to_string(stored.info.num_nodes) + " nodes but the graph has " +
          std::to_string(graph.NumNodes()));
    }
    return std::move(stored.pairs);
  }
  GQD_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ReadRelationPairsText(graph, text);
}

/// Finds `--flag value` in argv; returns nullptr when absent.
const char* FlagValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; i++) {
    if (std::strcmp(argv[i], flag) == 0) {
      return argv[i + 1];
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; i++) {
    if (std::strcmp(argv[i], flag) == 0) {
      return true;
    }
  }
  return false;
}

/// Extracts `--trace-out <file>` or `--trace-out=<file>`; empty when absent.
std::string TraceOutPath(int argc, char** argv) {
  for (int i = 0; i < argc; i++) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      return argv[i] + 12;
    }
  }
  return std::string();
}

/// Installs a Tracer for the command's lifetime when --trace-out was given
/// and writes the Chrome trace-event JSON on destruction, so every exit
/// path (including failures) still produces a trace file.
class TraceWriter {
 public:
  explicit TraceWriter(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) {
      tracer_.emplace();
      scope_.emplace(&*tracer_);
    }
  }
  ~TraceWriter() {
    if (!tracer_.has_value()) {
      return;
    }
    scope_.reset();
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write trace file %s\n",
                   path_.c_str());
      return;
    }
    out << TraceToChromeJson(tracer_->Drain());
  }
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

 private:
  std::string path_;
  std::optional<Tracer> tracer_;
  std::optional<Tracer::Scope> scope_;
};

/// Emplaces a ResourceBudget from --max-bytes (and, when
/// `tuples_axis` is set, --max-tuples); leaves `*budget` empty when
/// neither flag is present.
void BudgetFromFlags(int argc, char** argv,
                     std::optional<ResourceBudget>* budget,
                     bool tuples_axis) {
  const char* max_bytes_flag = FlagValue(argc, argv, "--max-bytes");
  std::uint64_t max_bytes =
      max_bytes_flag != nullptr ? std::strtoull(max_bytes_flag, nullptr, 10)
                                : 0;
  std::uint64_t max_tuples = 0;
  if (tuples_axis) {
    const char* max_tuples_flag = FlagValue(argc, argv, "--max-tuples");
    if (max_tuples_flag != nullptr) {
      max_tuples = std::strtoull(max_tuples_flag, nullptr, 10);
    }
  }
  if (max_bytes > 0 || max_tuples > 0) {
    budget->emplace(max_bytes, max_tuples);
  }
}

/// Prints a checker's partial-progress report (budget trips) to stderr and
/// reports whether one was present — the caller exits 4 in that case.
bool ReportPartial(const std::optional<PartialProgress>& partial) {
  if (!partial.has_value()) {
    return false;
  }
  std::fprintf(stderr, "partial progress: %s\n",
               PartialProgressToString(*partial).c_str());
  return true;
}

int CmdEval(int argc, char** argv) {
  if (argc < 3) {
    return Usage();
  }
  TraceWriter trace(TraceOutPath(argc, argv));
  auto loaded = LoadGraph(argv[0]);
  if (!loaded.ok()) {
    return Fail(loaded.status());
  }
  const DataGraph& graph = *loaded.value().graph;
  std::string language = argv[1];
  std::string text = argv[2];
  // Opt-in pre-flight: reject error-level lint findings before evaluating.
  bool preflight = HasFlag(argc - 3, argv + 3, "--preflight");
  auto run_preflight = [&](const PathExpression& expression) {
    return preflight ? PreflightPathExpression(graph, expression)
                     : Status::OK();
  };
  // Optional resource budget; an exceeded budget exits 4 with a
  // ResourceExhausted error instead of exhausting host memory.
  std::optional<ResourceBudget> budget;
  BudgetFromFlags(argc - 3, argv + 3, &budget, /*tuples_axis=*/true);
  EvalOptions eval_options;
  eval_options.budget = budget.has_value() ? &budget.value() : nullptr;
  BinaryRelation result(graph.NumNodes());
  if (language == "regex") {
    auto e = ParseRegex(text);
    if (!e.ok()) {
      return Fail(e.status());
    }
    Status admitted = run_preflight(e.value());
    if (!admitted.ok()) {
      return Fail(admitted);
    }
    auto evaluated = EvaluateRpq(graph, e.value(), eval_options);
    if (!evaluated.ok()) {
      return Fail(evaluated.status());
    }
    result = std::move(evaluated).value();
  } else if (language == "rem") {
    auto e = ParseRem(text);
    if (!e.ok()) {
      return Fail(e.status());
    }
    Status admitted = run_preflight(e.value());
    if (!admitted.ok()) {
      return Fail(admitted);
    }
    auto evaluated = EvaluateRem(graph, e.value(), eval_options);
    if (!evaluated.ok()) {
      return Fail(evaluated.status());
    }
    result = std::move(evaluated).value();
  } else if (language == "ree") {
    auto e = ParseRee(text);
    if (!e.ok()) {
      return Fail(e.status());
    }
    Status admitted = run_preflight(e.value());
    if (!admitted.ok()) {
      return Fail(admitted);
    }
    auto evaluated = EvaluateRee(graph, e.value(), eval_options);
    if (!evaluated.ok()) {
      return Fail(evaluated.status());
    }
    result = std::move(evaluated).value();
  } else {
    return Usage();
  }
  std::printf("%s\n", result.ToString(graph).c_str());

  const char* explain_at = FlagValue(argc - 3, argv + 3, "--explain");
  if (explain_at != nullptr) {
    // --explain u v: the two node names follow the flag.
    int index = -1;
    for (int i = 3; i < argc; i++) {
      if (std::strcmp(argv[i], "--explain") == 0) {
        index = i;
        break;
      }
    }
    if (index < 0 || index + 2 >= argc) {
      return Usage();
    }
    auto u = graph.FindNode(argv[index + 1]);
    auto v = graph.FindNode(argv[index + 2]);
    if (!u.ok()) {
      return Fail(u.status());
    }
    if (!v.ok()) {
      return Fail(v.status());
    }
    std::optional<ExplainedPath> witness;
    if (language == "regex") {
      witness = ExplainRpqPair(graph,
                               ParseRegex(text).ValueOrDie(), u.value(),
                               v.value());
    } else if (language == "rem") {
      witness = ExplainRemPair(graph, ParseRem(text).ValueOrDie(),
                               u.value(), v.value());
    } else {
      witness = ExplainReePair(graph, ParseRee(text).ValueOrDie(),
                               u.value(), v.value());
    }
    if (!witness.has_value()) {
      std::printf("(%s, %s): not in the result\n", argv[index + 1],
                  argv[index + 2]);
    } else {
      std::printf("(%s, %s) via nodes:", argv[index + 1], argv[index + 2]);
      for (NodeId node : witness->nodes) {
        std::printf(" %s", graph.NodeName(node).c_str());
      }
      std::printf("\n              data path: %s\n",
                  witness->data_path.ToString(graph).c_str());
    }
  }
  return 0;
}

int CmdCheck(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  TraceWriter trace(TraceOutPath(argc, argv));
  auto check_start = std::chrono::steady_clock::now();
  auto loaded = LoadGraph(argv[0]);
  if (!loaded.ok()) {
    return Fail(loaded.status());
  }
  const DataGraph& graph = *loaded.value().graph;
  // --max-bytes attaches a byte budget: a trip stops the checker with
  // verdict budget-exhausted plus a partial-progress report, and exit 4.
  std::optional<ResourceBudget> budget;
  BudgetFromFlags(argc, argv, &budget, /*tuples_axis=*/false);
  const ResourceBudget* budget_ptr =
      budget.has_value() ? &budget.value() : nullptr;
  RelationBackend backend_choice = RelationBackend::kAuto;
  const char* backend_flag = FlagValue(argc, argv, "--relation-backend");
  if (backend_flag != nullptr &&
      !ParseRelationBackend(backend_flag, &backend_choice)) {
    return Usage();
  }
  // The pair list is O(nnz) memory whichever source format it comes from;
  // only once nnz is known can the representation be chosen and its cost
  // admitted against the budget — a budgeted dense check over a
  // million-node graph exits 4 with a clean diagnostic instead of
  // attempting a ~125 GB allocation, while a sparse one proceeds.
  auto pairs = LoadRelationPairs(graph, loaded.value().info.fingerprint,
                                 argv[1]);
  if (!pairs.ok()) {
    return Fail(pairs.status());
  }
  const std::size_t n = graph.NumNodes();
  const std::size_t nnz = pairs.value().size();
  RelationBackend resolved = backend_choice == RelationBackend::kAuto
                                 ? ChooseRelationBackend(n, nnz)
                                 : backend_choice;
  const std::size_t estimate = EstimateRelationBytes(resolved, n, nnz);
  if (budget_ptr != nullptr) {
    budget_ptr->ChargeBytes(static_cast<std::int64_t>(estimate));
    if (Status admitted = budget_ptr->Check(); !admitted.ok()) {
      RelationCounters::Instance().admission_refusals.fetch_add(
          1, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "admission: %s relation backend estimated at %zu bytes"
                   " (n=%zu, nnz=%zu); try --relation-backend"
                   " sparse|blocked or a larger --max-bytes\n",
                   RelationBackendName(resolved), estimate, n, nnz);
      return Fail(admitted);
    }
  }
  AdaptiveRelation relation;
  {
    GQD_TRACE_SPAN(build_span, "relation.build");
    auto build_start = std::chrono::steady_clock::now();
    relation = AdaptiveRelation::FromPairs(n, std::move(pairs).value(),
                                           backend_choice);
    auto build_elapsed = std::chrono::steady_clock::now() - build_start;
    NoteRelationBackendSelected(relation.backend());
    RelationCounters::Instance().build_micros.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                build_elapsed)
                .count()),
        std::memory_order_relaxed);
    // Attrs are numeric; the backend is recorded as its enum value
    // (0 auto, 1 dense, 2 sparse, 3 blocked).
    GQD_TRACE_SPAN_ATTR(build_span, "backend", relation.backend());
    GQD_TRACE_SPAN_ATTR(build_span, "nnz", relation.Nnz());
    GQD_TRACE_SPAN_ATTR(build_span, "bytes", relation.ByteSize());
  }
  const char* language_flag = FlagValue(argc, argv, "--language");
  std::string language = language_flag != nullptr ? language_flag : "all";
  const char* k_flag = FlagValue(argc, argv, "--k");
  std::size_t k = k_flag != nullptr ? std::strtoul(k_flag, nullptr, 10) : 2;
  bool json = HasFlag(argc, argv, "--json");

  KRemDefinabilityOptions krem_options;
  ReeDefinabilityOptions ree_options;
  const char* threads_flag = FlagValue(argc, argv, "--threads");
  if (threads_flag != nullptr) {
    krem_options.num_threads = std::strtoul(threads_flag, nullptr, 10);
  }
  const char* engine_flag = FlagValue(argc, argv, "--engine");
  if (engine_flag != nullptr) {
    std::string engine = engine_flag;
    if (engine == "reference") {
      krem_options.engine = KRemEngine::kReference;
      ree_options.engine = ReeEngine::kReference;
    } else if (engine != "kernel") {
      return Usage();
    }
  }
  const char* max_tuples_flag = FlagValue(argc, argv, "--max-tuples");
  if (max_tuples_flag != nullptr) {
    krem_options.max_tuples = std::strtoul(max_tuples_flag, nullptr, 10);
    ree_options.max_monoid_size = krem_options.max_tuples;
  }
  krem_options.budget = budget_ptr;
  ree_options.budget = budget_ptr;
  UcrdpqDefinabilityOptions ucrdpq_options;
  ucrdpq_options.csp.budget = budget_ptr;

  int exit_code = 0;
  std::vector<std::pair<std::string, DefinabilityVerdict>> verdicts;
  auto record = [&](std::string name, DefinabilityVerdict verdict,
                    const std::optional<PartialProgress>& partial) {
    if (!json) {
      std::printf("%-10s %s\n", name.c_str(),
                  DefinabilityVerdictToString(verdict));
    }
    verdicts.emplace_back(std::move(name), verdict);
    if (ReportPartial(partial)) {
      exit_code = 4;
    }
  };
  if (language == "all" || language == "rpq") {
    auto r = CheckRpqDefinability(graph, relation, krem_options);
    if (!r.ok()) {
      return Fail(r.status());
    }
    record("rpq", r.value().verdict, r.value().partial);
  }
  if (language == "all" || language == "rem") {
    auto r = CheckKRemDefinability(graph, relation, k, krem_options);
    if (!r.ok()) {
      return Fail(r.status());
    }
    record(json ? "rem" : "rem(k=" + std::to_string(k) + ")",
           r.value().verdict, r.value().partial);
  }
  if (language == "all" || language == "ree") {
    auto r = CheckReeDefinability(graph, relation, ree_options);
    if (!r.ok()) {
      return Fail(r.status());
    }
    record("ree", r.value().verdict, r.value().partial);
  }
  if (language == "all" || language == "ucrdpq") {
    auto r = CheckUcrdpqDefinability(graph, relation, ucrdpq_options);
    if (!r.ok()) {
      return Fail(r.status());
    }
    record("ucrdpq", r.value().verdict, r.value().partial);
  }
  if (json) {
    // One object the bench harness can diff across backends: verdicts plus
    // what the relation actually cost to hold and how long the whole
    // command took.
    auto wall = std::chrono::steady_clock::now() - check_start;
    struct rusage usage {};
    getrusage(RUSAGE_SELF, &usage);
    std::string out = "{\"verdicts\":{";
    for (std::size_t i = 0; i < verdicts.size(); i++) {
      if (i > 0) {
        out += ",";
      }
      out += "\"" + verdicts[i].first + "\":\"" +
             DefinabilityVerdictToString(verdicts[i].second) + "\"";
    }
    char tail[256];
    std::snprintf(
        tail, sizeof(tail),
        "},\"relation\":{\"backend\":\"%s\",\"nnz\":%zu,\"bytes\":%zu},"
        "\"wall_ms\":%.3f,\"peak_rss_kb\":%llu}",
        RelationBackendName(relation.backend()), relation.Nnz(),
        relation.ByteSize(),
        std::chrono::duration<double, std::milli>(wall).count(),
        static_cast<unsigned long long>(usage.ru_maxrss));
    out += tail;
    std::printf("%s\n", out.c_str());
  }
  return exit_code;
}

int CmdSynth(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  auto loaded = LoadGraph(argv[0]);
  if (!loaded.ok()) {
    return Fail(loaded.status());
  }
  const DataGraph& graph = *loaded.value().graph;
  auto relation = LoadRelation(graph, argv[1]);
  if (!relation.ok()) {
    return Fail(relation.status());
  }
  const char* language_flag = FlagValue(argc, argv, "--language");
  if (language_flag == nullptr) {
    return Usage();
  }
  std::string language = language_flag;
  const char* k_flag = FlagValue(argc, argv, "--k");
  std::size_t k = k_flag != nullptr ? std::strtoul(k_flag, nullptr, 10) : 2;
  bool simplify = HasFlag(argc, argv, "--simplify");

  KRemDefinabilityOptions krem_options;
  ReeDefinabilityOptions ree_options;
  const char* threads_flag = FlagValue(argc, argv, "--threads");
  if (threads_flag != nullptr) {
    krem_options.num_threads = std::strtoul(threads_flag, nullptr, 10);
  }
  const char* engine_flag = FlagValue(argc, argv, "--engine");
  if (engine_flag != nullptr) {
    std::string engine = engine_flag;
    if (engine == "reference") {
      krem_options.engine = KRemEngine::kReference;
      ree_options.engine = ReeEngine::kReference;
    } else if (engine != "kernel") {
      return Usage();
    }
  }
  // Budget governs the definability search inside synthesis; a trip
  // surfaces as verdict budget-exhausted, i.e. "no query synthesized".
  std::optional<ResourceBudget> budget;
  BudgetFromFlags(argc, argv, &budget, /*tuples_axis=*/false);
  const ResourceBudget* budget_ptr =
      budget.has_value() ? &budget.value() : nullptr;
  krem_options.budget = budget_ptr;
  ree_options.budget = budget_ptr;

  if (language == "rpq") {
    auto q = SynthesizeRpqQuery(graph, relation.value(),
                                krem_options);
    if (!q.ok()) {
      return Fail(q.status());
    }
    if (!q.value().has_value()) {
      std::printf("not definable\n");
      return 3;
    }
    RegexPtr e = *q.value();
    if (simplify) {
      auto s = SimplifyRegexOnGraph(graph, e, relation.value());
      if (s.ok()) {
        e = s.value();
      }
    }
    std::printf("%s\n", RegexToString(e).c_str());
    return 0;
  }
  if (language == "rem") {
    auto q = SynthesizeKRemQuery(graph, relation.value(), k,
                                 krem_options);
    if (!q.ok()) {
      return Fail(q.status());
    }
    if (!q.value().has_value()) {
      std::printf("not definable with %zu registers\n", k);
      return 3;
    }
    std::printf("%s\n", RemToString(*q.value()).c_str());
    return 0;
  }
  if (language == "ree") {
    auto q = SynthesizeReeQuery(graph, relation.value(),
                                ree_options);
    if (!q.ok()) {
      return Fail(q.status());
    }
    if (!q.value().has_value()) {
      std::printf("not definable\n");
      return 3;
    }
    ReePtr e = *q.value();
    if (simplify) {
      auto s = SimplifyReeOnGraph(graph, e, relation.value());
      if (s.ok()) {
        e = s.value();
      }
    }
    std::printf("%s\n", ReeToString(e).c_str());
    return 0;
  }
  return Usage();
}

int CmdConvert(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string language = argv[0];
  if (language == "graph") {
    // `gqd convert graph <in> [<out>] [--validate]` — converts between the
    // text format and the binary container, direction decided by the input
    // format. With a container input and no output, --validate just
    // deep-checks the file.
    const char* in_path = argv[1];
    const char* out_path = argc >= 3 && argv[2][0] != '-' ? argv[2] : nullptr;
    bool validate = HasFlag(argc, argv, "--validate");
    bool in_is_container = IsGraphContainer(in_path);
    if (out_path == nullptr) {
      if (!in_is_container || !validate) {
        return Usage();
      }
      Status checked = ValidateGraphContainer(in_path);
      if (!checked.ok()) {
        return Fail(checked);
      }
      std::printf("ok: %s\n", in_path);
      return 0;
    }
    OpenOptions open_options;
    open_options.validate = validate && in_is_container;
    auto loaded = GraphStore::OpenFile(in_path, open_options);
    if (!loaded.ok()) {
      return Fail(loaded.status());
    }
    const DataGraph& graph = *loaded.value().graph;
    if (in_is_container) {
      std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        return Fail(Status::IOError(std::string("cannot open '") + out_path +
                                    "' for writing"));
      }
      out << WriteGraphText(graph);
      out.close();
      if (!out) {
        return Fail(
            Status::IOError(std::string("failed writing '") + out_path + "'"));
      }
    } else {
      Status written = WriteGraphContainer(graph, out_path);
      if (!written.ok()) {
        return Fail(written);
      }
      if (validate) {
        Status checked = ValidateGraphContainer(out_path);
        if (!checked.ok()) {
          return Fail(checked);
        }
      }
    }
    std::fprintf(stderr, "%s -> %s (%zu nodes, %zu edges, fingerprint %s)\n",
                 in_path, out_path, graph.NumNodes(), graph.NumEdges(),
                 loaded.value().info.fingerprint.c_str());
    return 0;
  }
  if (language == "relation") {
    // `gqd convert relation <graph> <in> <out>` — converts between the pair
    // text format and the .gqdr container, direction decided by the input
    // format. The graph supplies node names (text side) and the
    // fingerprint the container binds to.
    if (argc < 4) {
      return Usage();
    }
    auto loaded = LoadGraph(argv[1]);
    if (!loaded.ok()) {
      return Fail(loaded.status());
    }
    const DataGraph& graph = *loaded.value().graph;
    const char* in_path = argv[2];
    const char* out_path = argv[3];
    auto pairs =
        LoadRelationPairs(graph, loaded.value().info.fingerprint, in_path);
    if (!pairs.ok()) {
      return Fail(pairs.status());
    }
    std::size_t num_pairs = pairs.value().size();
    if (IsRelationContainerFile(in_path)) {
      std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        return Fail(Status::IOError(std::string("cannot open '") + out_path +
                                    "' for writing"));
      }
      out << WriteRelationPairsText(graph, std::move(pairs).value());
      out.close();
      if (!out) {
        return Fail(
            Status::IOError(std::string("failed writing '") + out_path + "'"));
      }
    } else {
      Status written = WriteRelationContainer(
          graph.NumNodes(), std::move(pairs).value(),
          FingerprintFromHex(loaded.value().info.fingerprint), out_path);
      if (!written.ok()) {
        return Fail(written);
      }
    }
    std::fprintf(stderr, "%s -> %s (%zu nodes, %zu pairs)\n", in_path,
                 out_path, graph.NumNodes(), num_pairs);
    return 0;
  }
  if (language == "regex") {
    auto e = ParseRegex(argv[1]);
    if (!e.ok()) {
      return Fail(e.status());
    }
    std::printf("%s\n", RemToString(RegexToRem(e.value())).c_str());
    return 0;
  }
  if (language == "ree") {
    auto e = ParseRee(argv[1]);
    if (!e.ok()) {
      return Fail(e.status());
    }
    RemPtr rem = ReeToRem(e.value());
    std::printf("%s\n", RemToString(rem).c_str());
    std::fprintf(stderr, "registers: %zu\n", RemNumRegisters(rem));
    return 0;
  }
  return Usage();
}

/// `gqd gen scale-free|grid --out FILE [...]` — deterministic synthetic
/// graph generators. By default the graph streams straight into a binary
/// container through GraphContainerBuilder (a million-node graph builds in
/// tens of megabytes, never holding the text form); --text routes through a
/// resident DataGraph and writes the node/edge text format instead.
int CmdGen(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  std::string kind = argv[0];
  const char* out_path = FlagValue(argc, argv, "--out");
  if (out_path == nullptr) {
    return Usage();
  }
  const char* seed_flag = FlagValue(argc, argv, "--seed");
  const char* values_flag = FlagValue(argc, argv, "--values");
  if (kind == "relation") {
    // `gqd gen relation --graph FILE --out FILE [--pairs N | --density D
    // | --word a.b] [--seed S] [--text]` — deterministic candidate
    // relations over the graph's nodes. --density D samples D pairs per
    // node on average (default 4), --pairs N an absolute draw count
    // (duplicates collapse during canonicalization, so the written count
    // can land slightly under); --word w instead computes R_w, which is
    // definable by construction — the shape the CI sparse-check leg
    // certifies at a million nodes. The container output binds to the
    // graph's fingerprint.
    const char* graph_flag = FlagValue(argc, argv, "--graph");
    if (graph_flag == nullptr) {
      return Usage();
    }
    auto loaded = LoadGraph(graph_flag);
    if (!loaded.ok()) {
      return Fail(loaded.status());
    }
    const DataGraph& graph = *loaded.value().graph;
    const std::size_t n = graph.NumNodes();
    if (n == 0) {
      return Fail(Status::InvalidArgument("cannot sample over an empty graph"));
    }
    std::uint64_t seed =
        seed_flag != nullptr ? std::strtoull(seed_flag, nullptr, 10) : 1;
    std::vector<std::pair<NodeId, NodeId>> pairs;
    const char* word_flag = FlagValue(argc, argv, "--word");
    if (word_flag != nullptr) {
      // --word a.b: S = R_w, the pairs connected by the label word w —
      // a relation that is RPQ-definable by construction, computed by
      // frontier streaming (per-source successor chase, never a matrix).
      std::vector<LabelId> word;
      std::string token;
      for (const char* c = word_flag;; c++) {
        if (*c == '.' || *c == '\0') {
          auto id = graph.labels().Find(token);
          if (!id.has_value()) {
            return Fail(Status::InvalidArgument(
                "label '" + token + "' is not in the graph's alphabet"));
          }
          word.push_back(*id);
          token.clear();
          if (*c == '\0') {
            break;
          }
        } else {
          token += *c;
        }
      }
      std::vector<NodeId> frontier;
      std::vector<NodeId> next;
      for (NodeId u = 0; u < n; u++) {
        frontier.assign(1, u);
        for (LabelId a : word) {
          next.clear();
          for (NodeId v : frontier) {
            for (const auto& [label, to] : graph.OutEdges(v)) {
              if (label == a) {
                next.push_back(to);
              }
            }
          }
          std::sort(next.begin(), next.end());
          next.erase(std::unique(next.begin(), next.end()), next.end());
          frontier.swap(next);
        }
        for (NodeId v : frontier) {
          pairs.emplace_back(u, v);
        }
      }
    } else {
      std::uint64_t draws = 0;
      const char* pairs_flag = FlagValue(argc, argv, "--pairs");
      const char* density_flag = FlagValue(argc, argv, "--density");
      if (pairs_flag != nullptr) {
        draws = std::strtoull(pairs_flag, nullptr, 10);
      } else {
        double density =
            density_flag != nullptr ? std::strtod(density_flag, nullptr) : 4.0;
        draws = static_cast<std::uint64_t>(density * static_cast<double>(n));
      }
      SplitMix64 rng(seed);
      pairs.reserve(draws);
      for (std::uint64_t i = 0; i < draws; i++) {
        NodeId u = static_cast<NodeId>(rng.NextBelow(n));
        NodeId v = static_cast<NodeId>(rng.NextBelow(n));
        pairs.emplace_back(u, v);
      }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    std::size_t num_pairs = pairs.size();
    if (HasFlag(argc, argv, "--text")) {
      std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
      if (!out) {
        return Fail(Status::IOError(std::string("cannot open '") + out_path +
                                    "' for writing"));
      }
      out << WriteRelationPairsText(graph, std::move(pairs));
      out.close();
      if (!out) {
        return Fail(
            Status::IOError(std::string("failed writing '") + out_path + "'"));
      }
    } else {
      Status written = WriteRelationContainer(
          n, std::move(pairs),
          FingerprintFromHex(loaded.value().info.fingerprint), out_path);
      if (!written.ok()) {
        return Fail(written);
      }
    }
    std::fprintf(stderr, "%s: %zu nodes, %zu pairs (backend auto = %s)\n",
                 out_path, n, num_pairs,
                 RelationBackendName(ChooseRelationBackend(n, num_pairs)));
    return 0;
  }
  auto emit = [&](GraphSink* sink) {
    if (kind == "scale-free") {
      ScaleFreeOptions options;
      const char* nodes_flag = FlagValue(argc, argv, "--nodes");
      if (nodes_flag != nullptr) {
        options.num_nodes = std::strtoul(nodes_flag, nullptr, 10);
      }
      const char* epn_flag = FlagValue(argc, argv, "--edges-per-node");
      if (epn_flag != nullptr) {
        options.edges_per_node = std::strtoul(epn_flag, nullptr, 10);
      }
      const char* labels_flag = FlagValue(argc, argv, "--labels");
      if (labels_flag != nullptr) {
        options.num_labels = std::strtoul(labels_flag, nullptr, 10);
      }
      if (values_flag != nullptr) {
        options.num_data_values = std::strtoul(values_flag, nullptr, 10);
      }
      if (seed_flag != nullptr) {
        options.seed = std::strtoull(seed_flag, nullptr, 10);
      }
      GenerateScaleFree(options, sink);
      return true;
    }
    if (kind == "grid") {
      GridOptions options;
      const char* rows_flag = FlagValue(argc, argv, "--rows");
      if (rows_flag != nullptr) {
        options.rows = std::strtoul(rows_flag, nullptr, 10);
      }
      const char* cols_flag = FlagValue(argc, argv, "--cols");
      if (cols_flag != nullptr) {
        options.cols = std::strtoul(cols_flag, nullptr, 10);
      }
      if (values_flag != nullptr) {
        options.num_data_values = std::strtoul(values_flag, nullptr, 10);
      }
      if (seed_flag != nullptr) {
        options.seed = std::strtoull(seed_flag, nullptr, 10);
      }
      GenerateGrid(options, sink);
      return true;
    }
    return false;
  };
  if (HasFlag(argc, argv, "--text")) {
    DataGraphSink sink;
    if (!emit(&sink)) {
      return Usage();
    }
    DataGraph graph = sink.Take();
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Fail(Status::IOError(std::string("cannot open '") + out_path +
                                  "' for writing"));
    }
    out << WriteGraphText(graph);
    out.close();
    if (!out) {
      return Fail(
          Status::IOError(std::string("failed writing '") + out_path + "'"));
    }
    std::fprintf(stderr, "%s: %zu nodes, %zu edges (text)\n", out_path,
                 graph.NumNodes(), graph.NumEdges());
    return 0;
  }
  GraphContainerBuilder builder;
  if (!emit(&builder)) {
    return Usage();
  }
  Status written = builder.WriteToFile(out_path);
  if (!written.ok()) {
    return Fail(written);
  }
  std::fprintf(stderr, "%s: %zu nodes, %zu edges, fingerprint %s\n", out_path,
               builder.NumNodes(), builder.NumEdges(),
               FingerprintToHex(builder.fingerprint()).c_str());
  return 0;
}

/// `gqd compile <rem> [--graph FILE] [--k N] [--json] [--plan-out FILE]` —
/// runs the plan pass on one REM query and dumps the QueryPlan: automaton
/// analysis summary, eliminated transitions, GQD-PLAN-* findings, and (with
/// --graph) the kernel-dispatch census over the assignment graph.
int CmdCompile(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  std::string text = argv[0];
  auto e = ParseRem(text);
  if (!e.ok()) {
    return Fail(e.status());
  }

  std::shared_ptr<const DataGraph> graph;
  const char* graph_path = FlagValue(argc - 1, argv + 1, "--graph");
  if (graph_path != nullptr) {
    auto loaded = LoadGraph(graph_path);
    if (!loaded.ok()) {
      return Fail(loaded.status());
    }
    graph = std::move(loaded).value().graph;
  }

  // Plan against the graph's alphabet when one is given — letters outside
  // it compile to dead fragments the analysis then eliminates. Without a
  // graph every letter of the query is interned fresh (nothing is dead on
  // alphabet grounds alone).
  StringInterner labels =
      graph != nullptr ? graph->labels() : StringInterner();
  QueryPlan plan = BuildRemQueryPlan(
      e.value(), &labels, /*intern_new_labels=*/graph == nullptr);

  if (graph != nullptr) {
    const char* k_flag = FlagValue(argc - 1, argv + 1, "--k");
    std::size_t k = k_flag != nullptr ? std::strtoul(k_flag, nullptr, 10)
                                      : plan.num_registers;
    // The dispatch census needs the packed pattern vocabulary (k <= 4);
    // beyond that the checkers run the reference engine anyway.
    if (k <= 4) {
      auto ag = AssignmentGraph::Build(*graph, k);
      if (!ag.ok()) {
        return Fail(ag.status());
      }
      KernelDispatchTable table = KernelDispatchTable::Build(ag.value());
      AttachDispatchCensus(table, &plan);
    }
  }

  bool json = HasFlag(argc - 1, argv + 1, "--json");
  std::string dump = json ? plan.ToJson(&labels) : plan.ToText(&labels);
  std::string out_path;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--plan-out") == 0 && i + 1 < argc) {
      out_path = argv[i + 1];
    } else if (std::strncmp(argv[i], "--plan-out=", 11) == 0) {
      out_path = argv[i] + 11;
    }
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "error: cannot write plan file %s\n",
                   out_path.c_str());
      return 1;
    }
    out << dump;
    if (json) {
      out << "\n";
    }
    std::printf("plan: %zu -> %zu states, %zu -> %zu transitions -> %s\n",
                plan.states_before, plan.states_after,
                plan.transitions_before, plan.transitions_after,
                out_path.c_str());
    return 0;
  }
  if (json) {
    std::printf("%s\n", dump.c_str());
  } else {
    std::printf("%s", dump.c_str());
  }
  return 0;
}

int CmdLint(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  bool json = HasFlag(argc, argv, "--json");
  AnalysisOptions options;
  options.include_notes = !HasFlag(argc, argv, "--no-notes");
  std::shared_ptr<const DataGraph> graph;
  const char* graph_path = FlagValue(argc, argv, "--graph");
  if (graph_path != nullptr) {
    auto loaded = LoadGraph(graph_path);
    if (!loaded.ok()) {
      return Fail(loaded.status());
    }
    graph = std::move(loaded).value().graph;
    options.graph = graph.get();
  }

  const char* suite_path = FlagValue(argc, argv, "--suite");
  if (suite_path != nullptr) {
    auto text = ReadFileToString(suite_path);
    if (!text.ok()) {
      return Fail(text.status());
    }
    auto entries = RunLintSuite(text.value(), options);
    if (!entries.ok()) {
      return Fail(entries.status());
    }
    std::printf("%s", json ? LintSuiteToJson(entries.value()).c_str()
                           : LintSuiteToText(entries.value()).c_str());
    if (json) {
      std::printf("\n");
    }
    // Error-severity findings get their own exit code (7) so CI and
    // editor integrations can tell "lint found defects" from hard errors.
    return SuiteHasErrors(entries.value()) ? 7 : 0;
  }

  if (argc < 2) {
    return Usage();
  }
  std::string language = argv[0];
  std::string text = argv[1];
  std::vector<Diagnostic> diagnostics;
  if (language == "regex") {
    auto e = ParseRegex(text);
    if (!e.ok()) {
      return Fail(e.status());
    }
    diagnostics = LintRegex(e.value(), options);
  } else if (language == "rem") {
    auto e = ParseRem(text);
    if (!e.ok()) {
      return Fail(e.status());
    }
    diagnostics = LintRem(e.value(), options);
  } else if (language == "ree") {
    auto e = ParseRee(text);
    if (!e.ok()) {
      return Fail(e.status());
    }
    diagnostics = LintRee(e.value(), options);
  } else {
    return Usage();
  }
  // Turn parser offsets into 1-based line:column anchors against the
  // query text the user actually typed.
  ResolveDiagnosticLocations(text, &diagnostics);
  if (json) {
    std::printf("%s\n", DiagnosticsToJson(diagnostics).c_str());
  } else if (diagnostics.empty()) {
    std::printf("clean\n");
  } else {
    std::printf("%s", DiagnosticsToText(diagnostics).c_str());
  }
  return HasErrors(diagnostics) ? 7 : 0;
}

int CmdInfo(int argc, char** argv) {
  if (argc < 1) {
    return Usage();
  }
  if (IsRelationContainerFile(argv[0])) {
    // Relation containers answer from the header statistics: shape, graph
    // binding, and what the admission estimate would charge for the
    // backend auto-selection would pick.
    auto stored = OpenRelationContainer(argv[0]);
    if (!stored.ok()) {
      return Fail(stored.status());
    }
    const RelationStoreInfo& info = stored.value().info;
    RelationBackend backend = ChooseRelationBackend(
        static_cast<std::size_t>(info.num_nodes),
        static_cast<std::size_t>(info.num_pairs));
    std::size_t estimate = EstimateRelationBytes(
        backend, static_cast<std::size_t>(info.num_nodes),
        static_cast<std::size_t>(info.num_pairs));
    if (HasFlag(argc, argv, "--json")) {
      std::printf(
          "{\"kind\":\"relation\",\"nodes\":%llu,\"pairs\":%llu,"
          "\"distinct_sources\":%llu,\"max_row_degree\":%llu,"
          "\"graph_fingerprint\":\"%016llx\",\"backend\":\"%s\","
          "\"estimated_bytes\":%zu,\"source_bytes\":%llu,"
          "\"load_micros\":%llu}\n",
          static_cast<unsigned long long>(info.num_nodes),
          static_cast<unsigned long long>(info.num_pairs),
          static_cast<unsigned long long>(info.distinct_sources),
          static_cast<unsigned long long>(info.max_row_degree),
          static_cast<unsigned long long>(info.graph_fingerprint),
          RelationBackendName(backend), estimate,
          static_cast<unsigned long long>(info.source_bytes),
          static_cast<unsigned long long>(info.load_micros));
      return 0;
    }
    std::printf("kind: relation container\nnodes: %llu\npairs: %llu\n",
                static_cast<unsigned long long>(info.num_nodes),
                static_cast<unsigned long long>(info.num_pairs));
    std::printf("distinct sources: %llu\nmax row degree: %llu\n",
                static_cast<unsigned long long>(info.distinct_sources),
                static_cast<unsigned long long>(info.max_row_degree));
    if (info.graph_fingerprint != 0) {
      std::printf("graph fingerprint: %016llx\n",
                  static_cast<unsigned long long>(info.graph_fingerprint));
    } else {
      std::printf("graph fingerprint: (unbound)\n");
    }
    std::printf("auto backend: %s (estimated %zu bytes)\n",
                RelationBackendName(backend), estimate);
    std::printf("source bytes: %llu\nload time: %llu us\n",
                static_cast<unsigned long long>(info.source_bytes),
                static_cast<unsigned long long>(info.load_micros));
    return 0;
  }
  auto loaded = LoadGraph(argv[0]);
  if (!loaded.ok()) {
    return Fail(loaded.status());
  }
  const DataGraph& graph = *loaded.value().graph;
  const GraphStoreInfo& storage = loaded.value().info;
  if (HasFlag(argc, argv, "--dot")) {
    std::printf("%s", WriteGraphDot(graph).c_str());
    return 0;
  }
  if (HasFlag(argc, argv, "--json")) {
    // The shape object the serve protocol embeds in load/info responses,
    // widened with the storage description and the process peak RSS so the
    // bench harness can diff text-parse vs mmap loading cost.
    struct rusage usage {};
    getrusage(RUSAGE_SELF, &usage);
    std::string shape = WriteGraphInfoJson(graph);
    shape.pop_back();  // reopen the object to append the extra fields
    std::printf(
        "%s,\"fingerprint\":\"%s\",\"storage\":{\"backend\":\"%s\","
        "\"source_bytes\":%llu,\"resident_bytes\":%llu,"
        "\"load_micros\":%llu},\"peak_rss_kb\":%llu}\n",
        shape.c_str(), storage.fingerprint.c_str(),
        GraphBackendName(storage.backend),
        static_cast<unsigned long long>(storage.source_bytes),
        static_cast<unsigned long long>(storage.resident_bytes),
        static_cast<unsigned long long>(storage.load_micros),
        static_cast<unsigned long long>(usage.ru_maxrss));
    return 0;
  }
  const DataGraph& g = graph;
  std::printf("nodes: %zu\nedges: %zu\nalphabet (%zu):", g.NumNodes(),
              g.NumEdges(), g.NumLabels());
  for (const std::string& name : g.labels().names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\ndata values (δ = %zu):", g.NumDataValues());
  for (const std::string& name : g.data_values().names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\nfingerprint: %s\nbackend: %s\n", storage.fingerprint.c_str(),
              GraphBackendName(storage.backend));
  std::printf("source bytes: %llu\nresident bytes: %llu\nload time: %llu us\n",
              static_cast<unsigned long long>(storage.source_bytes),
              static_cast<unsigned long long>(storage.resident_bytes),
              static_cast<unsigned long long>(storage.load_micros));
  return 0;
}

/// "examples/data/figure1.graph" -> "figure1" (the registry name a
/// preloaded graph is served under).
std::string GraphNameFromPath(const std::string& path) {
  std::size_t slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && dot > 0) {
    base = base.substr(0, dot);
  }
  return base;
}

int CmdServe(int argc, char** argv) {
  const char* port_flag = FlagValue(argc, argv, "--port");
  const char* threads_flag = FlagValue(argc, argv, "--threads");
  const char* cache_flag = FlagValue(argc, argv, "--cache");
  ServiceOptions options;
  if (threads_flag != nullptr) {
    options.num_threads = std::strtoul(threads_flag, nullptr, 10);
  }
  if (cache_flag != nullptr) {
    options.cache_capacity = std::strtoul(cache_flag, nullptr, 10);
  }
  // Load shedding: --max-concurrent enables the admission gate,
  // --max-queue bounds the wait line behind it (excess requests get an
  // Unavailable error with a --retry-after-ms hint).
  const char* max_concurrent_flag = FlagValue(argc, argv, "--max-concurrent");
  if (max_concurrent_flag != nullptr) {
    options.admission.max_concurrent =
        std::strtoul(max_concurrent_flag, nullptr, 10);
  }
  const char* max_queue_flag = FlagValue(argc, argv, "--max-queue");
  if (max_queue_flag != nullptr) {
    options.admission.max_queue = std::strtoul(max_queue_flag, nullptr, 10);
  }
  const char* retry_after_flag = FlagValue(argc, argv, "--retry-after-ms");
  if (retry_after_flag != nullptr) {
    options.admission.retry_after_ms =
        static_cast<std::int64_t>(std::strtoul(retry_after_flag, nullptr, 10));
  }
  ServerOptions server_options;
  const char* max_line_flag = FlagValue(argc, argv, "--max-line-bytes");
  if (max_line_flag != nullptr) {
    server_options.max_line_bytes = std::strtoul(max_line_flag, nullptr, 10);
  }
  QueryService service(options);
  // Preload every --graph file under its basename. LoadFile goes through
  // the GraphStore, so a binary container attaches as a zero-copy mapping.
  for (int i = 0; i + 1 < argc; i++) {
    if (std::strcmp(argv[i], "--graph") != 0) {
      continue;
    }
    std::string name = GraphNameFromPath(argv[i + 1]);
    auto entry = service.registry().LoadFile(name, argv[i + 1]);
    if (!entry.ok()) {
      return Fail(entry.status());
    }
    std::fprintf(stderr, "loaded graph '%s' (fingerprint %s, %s)\n",
                 name.c_str(), entry.value().fingerprint.c_str(),
                 GraphBackendName(entry.value().info.backend));
  }
  std::uint16_t port = port_flag != nullptr
                           ? static_cast<std::uint16_t>(
                                 std::strtoul(port_flag, nullptr, 10))
                           : 7878;
  Server server(&service, server_options);
  Status started = server.Start(port);
  if (!started.ok()) {
    return Fail(started);
  }
  // Machine-readable so wrappers can scrape the ephemeral port.
  std::printf("listening 127.0.0.1:%u\n", server.port());
  std::fflush(stdout);
  server.Wait();
  return 0;
}

int CmdRoute(int argc, char** argv) {
  RouterOptions options;
  for (int i = 0; i + 1 < argc; i++) {
    if (std::strcmp(argv[i], "--worker") == 0) {
      options.worker_ports.push_back(
          static_cast<std::uint16_t>(std::strtoul(argv[i + 1], nullptr, 10)));
    }
  }
  if (options.worker_ports.empty()) {
    return Usage();
  }
  if (const char* flag = FlagValue(argc, argv, "--replication")) {
    options.replication = std::strtoul(flag, nullptr, 10);
  }
  if (const char* flag = FlagValue(argc, argv, "--pool")) {
    options.pool_size = std::strtoul(flag, nullptr, 10);
  }
  if (const char* flag = FlagValue(argc, argv, "--probe-interval-ms")) {
    options.probe_interval_ms =
        static_cast<int>(std::strtoul(flag, nullptr, 10));
  }
  if (const char* flag = FlagValue(argc, argv, "--suspect-threshold")) {
    options.suspect_threshold =
        static_cast<int>(std::strtoul(flag, nullptr, 10));
  }
  if (const char* flag = FlagValue(argc, argv, "--retry-after-ms")) {
    options.retry_after_ms = static_cast<int>(std::strtoul(flag, nullptr, 10));
  }
  if (const char* flag = FlagValue(argc, argv, "--warm-log")) {
    options.warm_log_capacity = std::strtoul(flag, nullptr, 10);
  }
  if (const char* flag = FlagValue(argc, argv, "--exemplars")) {
    options.exemplar_capacity = std::strtoul(flag, nullptr, 10);
  }
  // Router --trace-out collects *merged* cluster traces (router + worker
  // spans per sampled request), written when the router shuts down.
  options.trace_out = TraceOutPath(argc, argv);
  ServerOptions server_options;
  if (const char* flag = FlagValue(argc, argv, "--max-line-bytes")) {
    server_options.max_line_bytes = std::strtoul(flag, nullptr, 10);
  }
  Router router(options);
  Status started_router = router.Start();
  if (!started_router.ok()) {
    return Fail(started_router);
  }
  // Preload every --graph through the router itself so placement and
  // replication are recorded exactly as a client load would be.
  for (int i = 0; i + 1 < argc; i++) {
    if (std::strcmp(argv[i], "--graph") != 0) {
      continue;
    }
    std::string name = GraphNameFromPath(argv[i + 1]);
    JsonValue::Object load;
    load.emplace_back("cmd", "load");
    load.emplace_back("name", name);
    load.emplace_back("path", argv[i + 1]);
    bool ignored = false;
    std::string response =
        router.HandleLine(JsonValue(std::move(load)).Serialize(), &ignored);
    if (response.find("\"ok\":true") == std::string::npos) {
      std::fprintf(stderr, "error: load of '%s' failed: %s\n", argv[i + 1],
                   response.c_str());
      return 1;
    }
    std::fprintf(stderr, "routed graph '%s' across the fleet\n", name.c_str());
  }
  std::uint16_t port =
      FlagValue(argc, argv, "--port") != nullptr
          ? static_cast<std::uint16_t>(
                std::strtoul(FlagValue(argc, argv, "--port"), nullptr, 10))
          : 7879;
  Server front(&router, server_options);
  Status started = front.Start(port);
  if (!started.ok()) {
    return Fail(started);
  }
  std::fprintf(stderr, "routing to %zu workers (replication %zu)\n",
               options.worker_ports.size(),
               std::min(options.replication, options.worker_ports.size()));
  // Same machine-readable line as `gqd serve` so wrappers work unchanged.
  std::printf("listening 127.0.0.1:%u\n", front.port());
  std::fflush(stdout);
  front.Wait();
  router.Stop();
  return 0;
}

/// Wraps a worker's QueryService with a fixed per-request service time on
/// the data plane (eval/check). On a single benchmark machine the real
/// per-query compute is microseconds, so fleet scaling would measure the
/// router's socket loop rather than capacity; the delay models a worker
/// whose capacity is its connection pool, which is what a multi-host
/// fleet looks like. Control-plane commands (ping/stats/load/...) are
/// never delayed, so health probes and warm replay behave normally.
class BenchWorkerHandler : public LineHandler {
 public:
  BenchWorkerHandler(QueryService* service, int service_ms)
      : service_(service), service_ms_(service_ms) {}

  void Reset(QueryService* service) { service_ = service; }

  std::string HandleLine(const std::string& line, bool* shutdown) override {
    std::string response = service_->HandleLine(line, shutdown);
    if (service_ms_ > 0 && (line.find("\"cmd\":\"eval\"") != std::string::npos ||
                            line.find("\"cmd\":\"check\"") !=
                                std::string::npos)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(service_ms_));
    }
    return response;
  }

 private:
  QueryService* service_;
  const int service_ms_;
};

/// bench-serve --workers N: self-hosts N workers plus a routing front and
/// drives the mixed workload through the router. --chaos-kill stops the
/// busiest worker once a third of the requests are done, restarts it with
/// an EMPTY registry at two thirds (so recovery genuinely depends on the
/// router's warm replay), and the exit code demands zero client-visible
/// errors and bit-identical verdicts across replicas and the failover.
int CmdBenchServeCluster(int argc, char** argv) {
  std::size_t num_workers =
      std::strtoul(FlagValue(argc, argv, "--workers"), nullptr, 10);
  if (num_workers == 0) {
    return Usage();
  }
  bool json = HasFlag(argc, argv, "--json");
  bool chaos_kill = HasFlag(argc, argv, "--chaos-kill");
  const char* clients_flag = FlagValue(argc, argv, "--clients");
  const char* requests_flag = FlagValue(argc, argv, "--requests");
  std::size_t num_clients = clients_flag != nullptr
                                ? std::strtoul(clients_flag, nullptr, 10)
                                : 4 * num_workers;
  std::size_t requests_per_client =
      requests_flag != nullptr ? std::strtoul(requests_flag, nullptr, 10)
                               : 100;
  if (num_clients == 0 || requests_per_client == 0) {
    return Usage();
  }
  int service_ms = 4;
  if (const char* flag = FlagValue(argc, argv, "--service-ms")) {
    service_ms = static_cast<int>(std::strtoul(flag, nullptr, 10));
  }

  // Workers: plain QueryServices behind the service-time wrapper.
  std::vector<std::unique_ptr<QueryService>> services;
  std::vector<std::unique_ptr<BenchWorkerHandler>> handlers;
  std::vector<std::unique_ptr<Server>> workers;
  for (std::size_t i = 0; i < num_workers; i++) {
    services.push_back(std::make_unique<QueryService>());
    handlers.push_back(
        std::make_unique<BenchWorkerHandler>(services.back().get(),
                                             service_ms));
    workers.push_back(std::make_unique<Server>(handlers.back().get()));
    Status started = workers.back()->Start(0);
    if (!started.ok()) {
      return Fail(started);
    }
  }

  RouterOptions router_options;
  for (const auto& worker : workers) {
    router_options.worker_ports.push_back(worker->port());
  }
  router_options.replication = std::min<std::size_t>(2, num_workers);
  if (const char* flag = FlagValue(argc, argv, "--replication")) {
    router_options.replication = std::strtoul(flag, nullptr, 10);
  }
  router_options.pool_size = 2;
  if (const char* flag = FlagValue(argc, argv, "--pool")) {
    router_options.pool_size = std::strtoul(flag, nullptr, 10);
  }
  // Fast failure detection so the kill window stays small relative to the
  // run: dead after 2 failed probes, 25 ms apart.
  router_options.probe_interval_ms = 25;
  router_options.suspect_threshold = 2;
  Router router(router_options);
  Status started_router = router.Start();
  if (!started_router.ok()) {
    return Fail(started_router);
  }
  Server front(&router);
  Status started_front = front.Start(0);
  if (!started_front.ok()) {
    return Fail(started_front);
  }
  std::uint16_t port = front.port();

  // The workload is sharded over several distinct graphs: consistent
  // hashing places each fingerprint on its own R owners, so a multi-shard
  // workload spreads across the whole fleet (a single graph would pin all
  // traffic on one primary, and a cluster scales by sharding).
  const std::size_t num_graphs = std::max<std::size_t>(8, 4 * num_workers);
  {
    LineClient setup;
    Status connected = setup.Connect(port);
    if (!connected.ok()) {
      return Fail(connected);
    }
    for (std::size_t g = 0; g < num_graphs; g++) {
      RandomGraphOptions graph_options;
      graph_options.num_nodes = 10;
      graph_options.num_labels = 2;
      graph_options.num_data_values = 4;
      graph_options.edge_percent = 20;
      graph_options.seed = 100 + g;  // distinct content => distinct shard
      JsonValue::Object load;
      load.emplace_back("cmd", "load");
      load.emplace_back("name", "bench" + std::to_string(g));
      load.emplace_back("text",
                        WriteGraphText(RandomDataGraph(graph_options)));
      auto response = setup.Call(JsonValue(std::move(load)).Serialize());
      if (!response.ok()) {
        return Fail(response.status());
      }
      if (response.value().find("\"ok\":true") == std::string::npos) {
        std::fprintf(stderr, "error: cluster load failed: %s\n",
                     response.value().c_str());
        return 1;
      }
    }
  }

  struct BenchQuery {
    const char* language;
    const char* text;
  };
  const BenchQuery kQueries[] = {
      {"rpq", "a+"},
      {"rpq", "a.a"},
      {"rem", "$r1. a+ [r1=]"},
      {"ree", "(a.a)="},
  };
  constexpr std::size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

  // Bit-identity across replicas and failover: the first ok response per
  // (shard, query template) is canonical; every later ok response must
  // match it byte for byte (verdicts are deterministic, so which replica
  // served is invisible).
  std::mutex canonical_mutex;
  std::vector<std::string> canonical(num_graphs * kNumQueries);
  std::atomic<std::size_t> mismatches{0};
  std::atomic<std::size_t> completed{0};

  std::vector<std::vector<std::uint64_t>> latencies_us(num_clients);
  std::vector<std::size_t> errors(num_clients, 0);
  std::vector<std::size_t> shed(num_clients, 0);
  std::vector<std::uint64_t> retries(num_clients, 0);
  std::vector<std::thread> clients;
  auto bench_start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < num_clients; c++) {
    clients.emplace_back([&, c] {
      LineClient client;
      if (!client.Connect(port).ok()) {
        errors[c] = requests_per_client;
        return;
      }
      RetryPolicy policy;
      policy.max_attempts = 8;
      policy.jitter_seed = c;
      latencies_us[c].reserve(requests_per_client);
      for (std::size_t i = 0; i < requests_per_client; i++) {
        std::size_t graph_index = (c + i) % num_graphs;
        std::size_t query_index = i % kNumQueries;
        const BenchQuery& query = kQueries[query_index];
        JsonValue::Object request;
        request.emplace_back("cmd", "eval");
        request.emplace_back("graph", "bench" + std::to_string(graph_index));
        request.emplace_back("language", query.language);
        request.emplace_back("query", query.text);
        std::string line = JsonValue(std::move(request)).Serialize();
        auto start = std::chrono::steady_clock::now();
        auto response = client.CallWithRetry(line, policy);
        auto elapsed = std::chrono::steady_clock::now() - start;
        latencies_us[c].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count()));
        completed.fetch_add(1, std::memory_order_relaxed);
        if (!response.ok()) {
          if (response.status().code() == StatusCode::kUnavailable) {
            shed[c]++;
          } else {
            errors[c]++;
          }
          continue;
        }
        if (response.value().find("\"ok\":true") == std::string::npos) {
          errors[c]++;
          continue;
        }
        std::size_t key = graph_index * kNumQueries + query_index;
        std::lock_guard<std::mutex> lock(canonical_mutex);
        if (canonical[key].empty()) {
          canonical[key] = response.value();
        } else if (canonical[key] != response.value()) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      retries[c] = client.retries();
    });
  }

  // Chaos choreography, run from the main thread against request
  // progress: kill the busiest worker at 1/3, restart it (empty registry)
  // at 2/3, then let the router's probe → rejoin → warm replay path bring
  // it back into rotation before the run ends.
  std::size_t killed_index = 0;
  bool killed = false;
  bool restarted = false;
  std::size_t total_requests = num_clients * requests_per_client;
  if (chaos_kill) {
    auto wait_progress = [&](std::size_t target) {
      while (completed.load(std::memory_order_relaxed) < target) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    };
    wait_progress(total_requests / 3);
    Router::Snapshot snap = router.GetSnapshot();
    for (std::size_t i = 1; i < num_workers; i++) {
      if (snap.worker_requests[i] > snap.worker_requests[killed_index]) {
        killed_index = i;
      }
    }
    std::uint16_t killed_port = workers[killed_index]->port();
    workers[killed_index]->Stop();
    workers[killed_index]->Wait();
    killed = true;
    wait_progress(2 * total_requests / 3);
    // Fresh service: the restarted worker remembers nothing; only the
    // router's warm replay can make it serve its shards again.
    services[killed_index] = std::make_unique<QueryService>();
    handlers[killed_index]->Reset(services[killed_index].get());
    workers[killed_index] =
        std::make_unique<Server>(handlers[killed_index].get());
    Status restart = workers[killed_index]->Start(killed_port);
    restarted = restart.ok();
    if (!restarted) {
      std::fprintf(stderr, "warning: worker restart failed: %s\n",
                   restart.ToString().c_str());
    }
  }

  for (std::thread& client : clients) {
    client.join();
  }
  auto wall = std::chrono::steady_clock::now() - bench_start;
  double wall_ms = std::chrono::duration<double, std::milli>(wall).count();

  // In a chaos run, give the rejoin path a moment to complete so the
  // reported fleet state reflects recovery, not the middle of it.
  if (chaos_kill && restarted) {
    for (int i = 0; i < 200; i++) {
      if (router.worker_state(killed_index) == WorkerState::kHealthy) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  Router::Snapshot snap = router.GetSnapshot();

  std::vector<std::uint64_t> all;
  std::size_t total_errors = 0;
  std::size_t total_shed = 0;
  std::uint64_t total_retries = 0;
  for (std::size_t c = 0; c < num_clients; c++) {
    all.insert(all.end(), latencies_us[c].begin(), latencies_us[c].end());
    total_errors += errors[c];
    total_shed += shed[c];
    total_retries += retries[c];
  }
  std::sort(all.begin(), all.end());
  auto percentile = [&](double p) -> std::uint64_t {
    if (all.empty()) {
      return 0;
    }
    std::size_t index =
        static_cast<std::size_t>(p * static_cast<double>(all.size() - 1));
    return all[index];
  };
  double throughput =
      wall_ms > 0 ? static_cast<double>(all.size()) / (wall_ms / 1000.0)
                  : 0.0;

  // Shut the fleet down through the router (it broadcasts to workers).
  {
    LineClient stop;
    if (stop.Connect(port).ok()) {
      (void)stop.Call("{\"cmd\":\"shutdown\"}");
    }
    front.Wait();
    for (auto& worker : workers) {
      worker->Stop();
      worker->Wait();
    }
  }

  std::size_t healthy_workers = 0;
  for (const WorkerState state : snap.worker_states) {
    if (state == WorkerState::kHealthy) {
      healthy_workers++;
    }
  }
  if (json) {
    std::string worker_requests;
    for (std::size_t i = 0; i < snap.worker_requests.size(); i++) {
      if (i > 0) {
        worker_requests += ",";
      }
      worker_requests += std::to_string(snap.worker_requests[i]);
    }
    std::printf(
        "{\"workers\":%zu,\"clients\":%zu,\"requests\":%zu,\"errors\":%zu,"
        "\"shed\":%zu,\"retries\":%llu,\"mismatches\":%zu,"
        "\"wall_ms\":%.3f,\"throughput_rps\":%.1f,"
        "\"latency_us\":{\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,"
        "\"max\":%llu},"
        "\"cluster\":{\"failovers\":%llu,\"sheds_returned\":%llu,"
        "\"all_down_returned\":%llu,\"warm_replays\":%llu,"
        "\"warm_lines\":%llu,\"healthy_workers\":%zu,"
        "\"killed_worker\":%d,\"worker_requests\":[%s]}}\n",
        num_workers, num_clients, all.size(), total_errors, total_shed,
        static_cast<unsigned long long>(total_retries),
        mismatches.load(), wall_ms, throughput,
        static_cast<unsigned long long>(percentile(0.50)),
        static_cast<unsigned long long>(percentile(0.90)),
        static_cast<unsigned long long>(percentile(0.99)),
        static_cast<unsigned long long>(all.empty() ? 0 : all.back()),
        static_cast<unsigned long long>(snap.failovers),
        static_cast<unsigned long long>(snap.sheds_returned),
        static_cast<unsigned long long>(snap.all_down_returned),
        static_cast<unsigned long long>(snap.warm_replays),
        static_cast<unsigned long long>(snap.warm_lines), healthy_workers,
        killed ? static_cast<int>(killed_index) : -1,
        worker_requests.c_str());
  } else {
    std::printf("workers:     %zu (replication %zu, pool %zu)\n", num_workers,
                std::min(router_options.replication, num_workers),
                router_options.pool_size);
    std::printf("clients:     %zu\n", num_clients);
    std::printf("requests:    %zu (%zu errors, %zu shed, %llu retries, "
                "%zu mismatches)\n",
                all.size(), total_errors, total_shed,
                static_cast<unsigned long long>(total_retries),
                mismatches.load());
    std::printf("wall time:   %.1f ms\n", wall_ms);
    std::printf("throughput:  %.1f req/s\n", throughput);
    std::printf("latency p50: %llu us   p99: %llu us\n",
                static_cast<unsigned long long>(percentile(0.50)),
                static_cast<unsigned long long>(percentile(0.99)));
    std::printf("cluster:     %llu failovers, %llu warm replays "
                "(%llu lines), %zu/%zu workers healthy\n",
                static_cast<unsigned long long>(snap.failovers),
                static_cast<unsigned long long>(snap.warm_replays),
                static_cast<unsigned long long>(snap.warm_lines),
                healthy_workers, num_workers);
    if (killed) {
      std::printf("chaos:       killed and restarted worker %zu\n",
                  killed_index);
    }
  }
  return (total_errors == 0 && mismatches.load() == 0) ? 0 : 1;
}

int CmdBenchServe(int argc, char** argv) {
  if (FlagValue(argc, argv, "--workers") != nullptr) {
    return CmdBenchServeCluster(argc, argv);
  }
  const char* port_flag = FlagValue(argc, argv, "--port");
  const char* clients_flag = FlagValue(argc, argv, "--clients");
  const char* requests_flag = FlagValue(argc, argv, "--requests");
  bool json = HasFlag(argc, argv, "--json");
  // Overload mode: --max-concurrent/--max-queue configure the self-hosted
  // server's admission gate; --retry makes clients use CallWithRetry so
  // shed requests back off and complete instead of counting as errors.
  bool retry = HasFlag(argc, argv, "--retry");
  std::size_t num_clients =
      clients_flag != nullptr ? std::strtoul(clients_flag, nullptr, 10) : 4;
  std::size_t requests_per_client =
      requests_flag != nullptr ? std::strtoul(requests_flag, nullptr, 10)
                               : 200;
  if (num_clients == 0 || requests_per_client == 0) {
    return Usage();
  }

  // Self-host unless pointed at a running server.
  ServiceOptions service_options;
  const char* max_concurrent_flag = FlagValue(argc, argv, "--max-concurrent");
  if (max_concurrent_flag != nullptr) {
    service_options.admission.max_concurrent =
        std::strtoul(max_concurrent_flag, nullptr, 10);
  }
  const char* max_queue_flag = FlagValue(argc, argv, "--max-queue");
  if (max_queue_flag != nullptr) {
    service_options.admission.max_queue =
        std::strtoul(max_queue_flag, nullptr, 10);
  }
  QueryService service{service_options};
  Server server(&service);
  std::uint16_t port;
  if (port_flag != nullptr) {
    port = static_cast<std::uint16_t>(std::strtoul(port_flag, nullptr, 10));
  } else {
    Status started = server.Start(0);
    if (!started.ok()) {
      return Fail(started);
    }
    port = server.port();
  }

  // Load the paper's Figure-1 graph and query it in all three languages.
  {
    LineClient setup;
    Status connected = setup.Connect(port);
    if (!connected.ok()) {
      return Fail(connected);
    }
    JsonValue::Object load;
    load.emplace_back("cmd", "load");
    load.emplace_back("name", "bench");
    load.emplace_back("text", WriteGraphText(Figure1Graph()));
    auto response = setup.Call(JsonValue(std::move(load)).Serialize());
    if (!response.ok()) {
      return Fail(response.status());
    }
  }
  struct BenchQuery {
    const char* language;
    const char* text;
  };
  const BenchQuery kQueries[] = {
      {"rpq", "a+"},
      {"rpq", "a.a"},
      {"rem", "$r1. a+ [r1=]"},
      {"ree", "(a.a)="},
  };
  constexpr std::size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

  std::vector<std::vector<std::uint64_t>> latencies_us(num_clients);
  std::vector<std::size_t> errors(num_clients, 0);
  std::vector<std::size_t> shed(num_clients, 0);
  std::vector<std::uint64_t> retries(num_clients, 0);
  std::vector<std::thread> clients;
  auto bench_start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < num_clients; c++) {
    clients.emplace_back([&, c] {
      LineClient client;
      if (!client.Connect(port).ok()) {
        errors[c] = requests_per_client;
        return;
      }
      RetryPolicy policy;
      policy.jitter_seed = c;
      latencies_us[c].reserve(requests_per_client);
      for (std::size_t i = 0; i < requests_per_client; i++) {
        const BenchQuery& query = kQueries[(c + i) % kNumQueries];
        JsonValue::Object request;
        request.emplace_back("cmd", "eval");
        request.emplace_back("graph", "bench");
        request.emplace_back("language", query.language);
        request.emplace_back("query", query.text);
        std::string line = JsonValue(std::move(request)).Serialize();
        auto start = std::chrono::steady_clock::now();
        auto response = retry ? client.CallWithRetry(line, policy)
                              : client.Call(line);
        auto elapsed = std::chrono::steady_clock::now() - start;
        latencies_us[c].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count()));
        if (!response.ok()) {
          errors[c]++;
        } else if (response.value().find("\"ok\":true") ==
                   std::string::npos) {
          // Without --retry a load-shed response is expected degradation,
          // tallied separately from hard errors.
          if (response.value().find("\"code\":\"Unavailable\"") !=
              std::string::npos) {
            shed[c]++;
          } else {
            errors[c]++;
          }
        }
      }
      retries[c] = client.retries();
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  auto wall = std::chrono::steady_clock::now() - bench_start;
  double wall_ms = std::chrono::duration<double, std::milli>(wall).count();

  std::vector<std::uint64_t> all;
  std::size_t total_errors = 0;
  std::size_t total_shed = 0;
  std::uint64_t total_retries = 0;
  for (std::size_t c = 0; c < num_clients; c++) {
    all.insert(all.end(), latencies_us[c].begin(), latencies_us[c].end());
    total_errors += errors[c];
    total_shed += shed[c];
    total_retries += retries[c];
  }
  std::sort(all.begin(), all.end());
  auto percentile = [&](double p) -> std::uint64_t {
    if (all.empty()) {
      return 0;
    }
    std::size_t index = static_cast<std::size_t>(
        p * static_cast<double>(all.size() - 1));
    return all[index];
  };
  double throughput =
      wall_ms > 0 ? static_cast<double>(all.size()) / (wall_ms / 1000.0)
                  : 0.0;

  if (port_flag == nullptr) {
    LineClient stop;
    if (stop.Connect(port).ok()) {
      (void)stop.Call("{\"cmd\":\"shutdown\"}");
    }
    server.Wait();
  }

  if (json) {
    std::printf(
        "{\"clients\":%zu,\"requests\":%zu,\"errors\":%zu,"
        "\"shed\":%zu,\"retries\":%llu,"
        "\"wall_ms\":%.3f,\"throughput_rps\":%.1f,"
        "\"latency_us\":{\"p50\":%llu,\"p90\":%llu,\"p99\":%llu,"
        "\"max\":%llu}}\n",
        num_clients, all.size(), total_errors, total_shed,
        static_cast<unsigned long long>(total_retries), wall_ms, throughput,
        static_cast<unsigned long long>(percentile(0.50)),
        static_cast<unsigned long long>(percentile(0.90)),
        static_cast<unsigned long long>(percentile(0.99)),
        static_cast<unsigned long long>(
            all.empty() ? 0 : all.back()));
  } else {
    std::printf("clients:     %zu\n", num_clients);
    std::printf("requests:    %zu (%zu errors, %zu shed, %llu retries)\n",
                all.size(), total_errors, total_shed,
                static_cast<unsigned long long>(total_retries));
    std::printf("wall time:   %.1f ms\n", wall_ms);
    std::printf("throughput:  %.1f req/s\n", throughput);
    std::printf("latency p50: %llu us\n",
                static_cast<unsigned long long>(percentile(0.50)));
    std::printf("latency p90: %llu us\n",
                static_cast<unsigned long long>(percentile(0.90)));
    std::printf("latency p99: %llu us\n",
                static_cast<unsigned long long>(percentile(0.99)));
    std::printf("latency max: %llu us\n",
                static_cast<unsigned long long>(
                    all.empty() ? 0 : all.back()));
  }
  return total_errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  std::string command = argv[1];
  if (command == "eval") {
    return CmdEval(argc - 2, argv + 2);
  }
  if (command == "check") {
    return CmdCheck(argc - 2, argv + 2);
  }
  if (command == "synth") {
    return CmdSynth(argc - 2, argv + 2);
  }
  if (command == "convert") {
    return CmdConvert(argc - 2, argv + 2);
  }
  if (command == "gen") {
    return CmdGen(argc - 2, argv + 2);
  }
  if (command == "compile") {
    return CmdCompile(argc - 2, argv + 2);
  }
  if (command == "lint") {
    return CmdLint(argc - 2, argv + 2);
  }
  if (command == "info") {
    return CmdInfo(argc - 2, argv + 2);
  }
  if (command == "serve") {
    return CmdServe(argc - 2, argv + 2);
  }
  if (command == "route") {
    return CmdRoute(argc - 2, argv + 2);
  }
  if (command == "bench-serve") {
    return CmdBenchServe(argc - 2, argv + 2);
  }
  return Usage();
}
