#!/usr/bin/env bash
# Golden-plan check: compiles the standard example queries with `gqd
# compile` and diffs the dumps against the goldens committed under
# tests/data/golden_plans/. CI runs this after every build; a diff means
# the planner's output changed — inspect it, then regenerate with
#
#   tools/check_plan_golden.sh build --update
#
# and commit the new goldens together with the planner change.

set -euo pipefail

BUILD_DIR="${1:-build}"
MODE="${2:-check}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
GQD="${BUILD_DIR}/tools/gqd"
GOLDEN_DIR="${REPO_ROOT}/tests/data/golden_plans"
GRAPH="${REPO_ROOT}/examples/data/social_network.graph"

if [[ ! -x "${GQD}" ]]; then
  echo "error: ${GQD} not found — build the repo first" >&2
  exit 1
fi
mkdir -p "${GOLDEN_DIR}"

# name|extra args — one plan dump per line. The graph-relative dumps pin
# the dead-transition elimination log and the kernel-class census; the
# graph-free dump pins the bare automaton analysis; the JSON dump pins the
# machine-readable schema.
CASES=(
  "friend_loop.txt|--graph ${GRAPH}"
  "friend_loop.json|--graph ${GRAPH} --json"
  "dead_letter.txt|--graph ${GRAPH}"
  "no_graph.txt|"
)
QUERIES=(
  '$r1. friend+ [r1=]'
  '$r1. friend+ [r1=]'
  '$r1. (friend|zz)+ [r1=]'
  '$r1. (a|b) [r1!=]'
)

status=0
for i in "${!CASES[@]}"; do
  name="${CASES[$i]%%|*}"
  extra="${CASES[$i]#*|}"
  golden="${GOLDEN_DIR}/${name}"
  actual="$(mktemp)"
  # shellcheck disable=SC2086  # extra is a flag list, splitting intended
  "${GQD}" compile "${QUERIES[$i]}" ${extra} > "${actual}"
  if [[ "${MODE}" == "--update" ]]; then
    cp "${actual}" "${golden}"
    echo "updated ${golden#"${REPO_ROOT}"/}"
  elif ! diff -u "${golden}" "${actual}"; then
    echo "plan dump ${name} diverged from its golden" >&2
    status=1
  fi
  rm -f "${actual}"
done

if [[ "${MODE}" != "--update" && ${status} -eq 0 ]]; then
  echo "all $((${#CASES[@]})) plan goldens match"
fi
exit ${status}
